//! Figure-regeneration benchmarks: each reproduced table/figure has a
//! benchmark exercising its experiment end-to-end (simulation + analysis) at
//! reduced scale. `cargo bench` therefore covers every artifact of the
//! paper's evaluation; the full 20-app tables come from the `lb-experiments`
//! binary.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::run_kernel;
use gpu_sim::policy::baseline_factory;
use lb_bench::Arch;
use workloads::app;

/// A tiny configuration so each simulated iteration is milliseconds.
fn tiny_cfg() -> GpuConfig {
    GpuConfig::default().with_sms(1).with_windows(2_000, 16_000)
}

fn bench_architectures(c: &mut Criterion) {
    // One representative cache-sensitive app under every headline
    // architecture (the Figure 12 columns).
    let mut g = c.benchmark_group("fig12_architectures");
    g.sample_size(10);
    for (name, arch) in [
        ("baseline", Arch::Baseline),
        ("best_swl2", Arch::StaticLimit(2)),
        ("pcal", Arch::Pcal),
        ("cerf", Arch::Cerf),
        ("linebacker", Arch::Linebacker),
    ] {
        g.bench_function(format!("GE_{name}"), |b| {
            let a = app("GE").unwrap();
            let cfg = tiny_cfg();
            b.iter(|| {
                let k = a.kernel(cfg.n_sms);
                black_box(run_kernel(cfg.clone(), k, &arch.factory()).ipc())
            });
        });
    }
    g.finish();
}

fn bench_ablations_and_combos(c: &mut Criterion) {
    // Figures 11 and 15 variants on a stream-heavy app (BI), where the
    // selective-vs-plain distinction matters.
    let mut g = c.benchmark_group("fig11_fig15_variants");
    g.sample_size(10);
    for (name, arch) in [
        ("victim_caching", Arch::VictimCaching),
        ("svc", Arch::Svc),
        ("pcal_cerf", Arch::PcalCerf),
        ("pcal_svc", Arch::PcalSvc),
        ("lb_cache_ext", Arch::LbCacheExt),
    ] {
        g.bench_function(format!("BI_{name}"), |b| {
            let a = app("BI").unwrap();
            let cfg = tiny_cfg();
            b.iter(|| {
                let k = a.kernel(cfg.n_sms);
                black_box(run_kernel(cfg.clone(), k, &arch.factory()).ipc())
            });
        });
    }
    g.finish();
}

fn bench_sweeps(c: &mut Criterion) {
    // Figure 10 (VTT associativity) and Figure 14 (L1 size) sweep points.
    let mut g = c.benchmark_group("fig10_fig14_sweep_points");
    g.sample_size(10);
    for assoc in [1u32, 16] {
        g.bench_function(format!("S2_lb_{assoc}way"), |b| {
            let a = app("S2").unwrap();
            let cfg = tiny_cfg();
            let arch = Arch::LinebackerAssoc(assoc);
            b.iter(|| {
                let k = a.kernel(cfg.n_sms);
                black_box(run_kernel(cfg.clone(), k, &arch.factory()).ipc())
            });
        });
    }
    for l1_kb in [16u64, 128] {
        g.bench_function(format!("S2_lb_l1_{l1_kb}kb"), |b| {
            let a = app("S2").unwrap();
            let cfg = tiny_cfg().with_l1_size(l1_kb * 1024);
            let arch = Arch::Linebacker;
            b.iter(|| {
                let k = a.kernel(cfg.n_sms);
                black_box(run_kernel(cfg.clone(), k, &arch.factory()).ipc())
            });
        });
    }
    g.finish();
}

fn bench_motivation(c: &mut Criterion) {
    // Figures 1-5 and Table 2 rely on baseline + enlarged-L1 + detailed
    // runs; measure each ingredient.
    let mut g = c.benchmark_group("motivation_ingredients");
    g.sample_size(10);
    g.bench_function("fig01_baseline_miss_breakdown", |b| {
        let a = app("CF").unwrap();
        let cfg = tiny_cfg();
        b.iter(|| {
            let k = a.kernel(cfg.n_sms);
            let s = run_kernel(cfg.clone(), k, &baseline_factory());
            black_box((s.miss_cold, s.miss_2c))
        });
    });
    g.bench_function("table2_192kb_run", |b| {
        let a = app("CF").unwrap();
        let cfg = tiny_cfg().with_l1_size(192 * 1024);
        b.iter(|| {
            let k = a.kernel(cfg.n_sms);
            black_box(run_kernel(cfg.clone(), k, &baseline_factory()).ipc())
        });
    });
    g.bench_function("fig02_detailed_stats_run", |b| {
        let a = app("CF").unwrap();
        let mut cfg = tiny_cfg();
        cfg.detailed_load_stats = true;
        b.iter(|| {
            let k = a.kernel(cfg.n_sms);
            let s = run_kernel(cfg.clone(), k, &baseline_factory());
            black_box(s.load_detail.len())
        });
    });
    g.bench_function("fig05_cache_ext_run", |b| {
        let a = app("GE").unwrap();
        let base = tiny_cfg();
        let cfg = Arch::CacheExt.transform_config(&base, &a);
        b.iter(|| {
            let k = a.kernel(cfg.n_sms);
            black_box(run_kernel(cfg.clone(), k, &baseline_factory()).ipc())
        });
    });
    g.finish();
}

fn bench_overhead_model(c: &mut Criterion) {
    // §4.2 storage-overhead computation (pure arithmetic).
    c.bench_function("overhead_model", |b| {
        b.iter(|| black_box(linebacker::StorageOverhead::compute(48 * 1024, 1536).total_kb()));
    });
}

criterion_group!(
    benches,
    bench_architectures,
    bench_ablations_and_combos,
    bench_sweeps,
    bench_motivation,
    bench_overhead_model,
);
criterion_main!(benches);
