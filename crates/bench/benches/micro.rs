//! Micro-benchmarks of the simulator's hot paths: tag array, MSHRs,
//! coalescer, register file, DRAM, VTT, Load Monitor, and a full-GPU cycle.
//!
//! Timed with the in-tree `testkit::bench` harness (the container has no
//! crates.io access, so criterion is not available). Each iteration batches
//! `OPS` operations so per-op overhead dominates the timer resolution.

use std::hint::black_box;

use gpu_sim::cache::{MshrFile, TagArray};
use gpu_sim::coalesce::coalesce;
use gpu_sim::config::{DramConfig, GpuConfig};
use gpu_sim::dram::{Dram, TrafficClass};
use gpu_sim::gpu::Gpu;
use gpu_sim::kernel::KernelBuilder;
use gpu_sim::pattern::AccessPattern;
use gpu_sim::policy::baseline_factory;
use gpu_sim::regfile::RegFile;
use gpu_sim::types::{Address, CtaId, LineAddr, Pc, RegNum};
use linebacker::{LbConfig, LinebackerPolicy, LoadMonitor, Vtt};
use testkit::bench;

/// Operations per timed iteration.
const OPS: u64 = 100_000;
const ITERS: u32 = 10;

fn bench_tag_array() {
    let mut t: TagArray<u8> = TagArray::new(48, 8);
    let mut i = 0u64;
    bench("tag_array_probe_fill_100k", ITERS, || {
        for _ in 0..OPS {
            i += 1;
            let line = LineAddr(i % 1000);
            if t.probe(black_box(line)).is_none() {
                t.fill(line, 0);
            }
        }
    });
}

fn bench_mshr() {
    let mut m = MshrFile::new(64);
    let mut i = 0u64;
    bench("mshr_allocate_complete_100k", ITERS, || {
        for _ in 0..OPS {
            i += 1;
            let line = LineAddr(i % 48);
            m.allocate(black_box(line), i);
            if i.is_multiple_of(4) {
                m.complete(line);
            }
        }
    });
}

fn bench_coalescer() {
    let coalesced: Vec<Address> = (0..32).map(|l| Address(0x1000 + l * 4)).collect();
    let divergent: Vec<Address> = (0..32).map(|l| Address(l * 4096)).collect();
    bench("coalesce_unit_stride_100k", ITERS, || {
        for _ in 0..OPS {
            black_box(coalesce(black_box(&coalesced)));
        }
    });
    bench("coalesce_divergent_10k", ITERS, || {
        for _ in 0..OPS / 10 {
            black_box(coalesce(black_box(&divergent)));
        }
    });
}

fn bench_regfile() {
    let mut rf = RegFile::new(2048, 32, 32);
    rf.allocate_cta(CtaId(0), 256);
    let mut i = 0u64;
    bench("regfile_access_100k", ITERS, || {
        for _ in 0..OPS {
            i += 1;
            black_box(rf.access(RegNum((i % 256) as u32), i / 3, i.is_multiple_of(3)));
        }
    });
}

fn bench_dram() {
    let mut d = Dram::new(DramConfig::default(), 2.45);
    let mut done = Vec::new();
    let mut i = 0u64;
    bench("dram_tick_loaded_100k", ITERS, || {
        for _ in 0..OPS {
            i += 1;
            if i.is_multiple_of(2) {
                d.push(LineAddr(i * 7), TrafficClass::DemandRead, i, i);
            }
            done.clear();
            d.tick(i, &mut done, &gpu_sim::trace::Tracer::off());
            black_box(done.len());
        }
    });
}

fn bench_vtt() {
    let mut v = Vtt::new(&LbConfig::default());
    v.set_tag_only(false);
    v.refresh_partitions(511);
    let mut i = 0u64;
    bench("vtt_insert_lookup_100k", ITERS, || {
        for _ in 0..OPS {
            i += 1;
            v.insert(LineAddr(i % 400));
            black_box(v.lookup(LineAddr((i * 3) % 400)));
        }
    });
}

fn bench_load_monitor() {
    let mut lm = LoadMonitor::new(32, 0.2);
    let mut i = 0u32;
    bench("load_monitor_record_100k", ITERS, || {
        for _ in 0..OPS {
            i += 1;
            lm.record(Pc(i % 256), i.is_multiple_of(3));
        }
    });
}

fn bench_lb_policy_construction() {
    let gpu = GpuConfig::default();
    let kernel = KernelBuilder::new("k")
        .grid(8, 8)
        .regs_per_thread(24)
        .load_then_use(AccessPattern::reuse_working_set(2048, false), 2)
        .iterations(100)
        .build()
        .unwrap();
    bench("linebacker_policy_new_1k", ITERS, || {
        for _ in 0..1000 {
            black_box(LinebackerPolicy::new(
                LbConfig::default(),
                gpu_sim::types::SmId(0),
                &gpu,
                &kernel,
            ));
        }
    });
}

fn bench_gpu_cycle() {
    let cfg = GpuConfig::default().with_sms(1).with_windows(4_000, u64::MAX / 2);
    let kernel = KernelBuilder::new("k")
        .grid(64, 8)
        .regs_per_thread(24)
        .load_then_use(AccessPattern::reuse_working_set(2048, false), 2)
        .alu(2)
        .iterations(1_000_000)
        .build()
        .unwrap();
    let mut gpu = Gpu::new(cfg, kernel, &baseline_factory());
    // Warm up dispatch.
    for _ in 0..100 {
        gpu.step();
    }
    bench("gpu_step_1sm_10k", ITERS, || {
        for _ in 0..10_000 {
            gpu.step();
        }
    });
}

fn main() {
    bench_tag_array();
    bench_mshr();
    bench_coalescer();
    bench_regfile();
    bench_dram();
    bench_vtt();
    bench_load_monitor();
    bench_lb_policy_construction();
    bench_gpu_cycle();
}
