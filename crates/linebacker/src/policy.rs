//! The Linebacker policy: ties the Load Monitor, Victim Tag Table, and CTA
//! Throttling Logic into the simulator's [`SmPolicy`] extension point.

use gpu_sim::config::GpuConfig;
use gpu_sim::kernel::KernelSpec;
use gpu_sim::policy::{MissService, PolicyCtx, PolicyFactory, SmPolicy, WindowInfo};
use gpu_sim::types::{CtaId, LineAddr, LoadId, Pc, RegNum, SmId};

use crate::config::{LbConfig, LbMode};
use crate::ctl::{CtaManager, IpcMonitor};
use crate::load_monitor::{LmPhase, LoadMonitor};
use crate::vtt::Vtt;

/// Execution phase of the Linebacker state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Per-load locality monitoring (tag-only VTT).
    Monitoring,
    /// High-locality loads selected; victim caching active.
    VictimCaching,
    /// No locality found: Linebacker disabled for this kernel.
    Disabled,
}

/// Linebacker for one SM.
///
/// # Examples
///
/// ```
/// use linebacker::{LbConfig, LinebackerPolicy};
/// use gpu_sim::config::GpuConfig;
/// use gpu_sim::kernel::KernelBuilder;
/// use gpu_sim::types::SmId;
///
/// let gpu = GpuConfig::default();
/// let kernel = KernelBuilder::new("k").grid(4, 2).alu(1).build()?;
/// let lb = LinebackerPolicy::new(LbConfig::default(), SmId(0), &gpu, &kernel);
/// # Ok::<(), String>(())
/// ```
#[derive(Debug)]
pub struct LinebackerPolicy {
    cfg: LbConfig,
    lm: LoadMonitor,
    vtt: Vtt,
    ipc: IpcMonitor,
    cta_mgr: CtaManager,
    phase: Phase,
    /// Current throttling limit (None until throttling engages).
    limit: Option<u32>,
    /// Hashed PCs selected as high-locality (cached from the LM).
    selected: Vec<u8>,
    /// CTAs whose restore is in flight: (cta, last register of its range).
    restoring: Vec<(CtaId, u32)>,
    /// Set after a re-activation (back-off): the next IPC improvement is
    /// explained by the back-off itself, so further throttling is latched
    /// off until IPC degrades again. Prevents throttle/activate ping-pong
    /// (the paper tuned its bounds "to prevent frequent throttling and
    /// re-activating CTAs").
    backed_off: bool,
    /// Best window IPC observed since throttling engaged.
    best_ipc: f64,
    /// Settle-window toggle: every other window skips the throttle decision
    /// so CTA-switch transients do not feed Equation 1.
    settle: bool,
    /// Per-limit IPC records collected during the probe phase.
    probe_records: Vec<(u32, f64)>,
    /// Deepest limit the probe phase will visit.
    probe_floor: u32,
    /// Probe finished; limit locked at the best-IPC level.
    locked: bool,
    /// Throttle/activate events (Figure 17 overhead accounting).
    throttle_events: u64,
}

impl LinebackerPolicy {
    /// Creates a Linebacker instance for one SM.
    pub fn new(cfg: LbConfig, _sm: SmId, gpu: &GpuConfig, kernel: &KernelSpec) -> Self {
        let mut vtt = Vtt::new(&cfg);
        let phase = if cfg.mode.selective {
            Phase::Monitoring
        } else {
            // "Victim Caching" ablation: no monitoring, preserve everything.
            vtt.set_tag_only(false);
            Phase::VictimCaching
        };
        LinebackerPolicy {
            lm: LoadMonitor::new(cfg.lm_entries, cfg.hit_threshold),
            ipc: IpcMonitor::new(cfg.ipc_upper, cfg.ipc_lower),
            cta_mgr: CtaManager::new(
                gpu.max_ctas_per_sm,
                kernel.regs_per_cta(),
                // Dedicated off-chip backup region base address.
                0x4000_0000,
            ),
            vtt,
            phase,
            limit: None,
            selected: Vec::new(),
            restoring: Vec::new(),
            backed_off: false,
            best_ipc: 0.0,
            settle: true,
            probe_records: Vec::new(),
            probe_floor: 1,
            locked: false,
            throttle_events: 0,
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LbConfig {
        &self.cfg
    }

    /// Currently selected high-locality hashed PCs.
    pub fn selected_hpcs(&self) -> &[u8] {
        &self.selected
    }

    /// Is the policy disabled (cache-insensitive kernel)?
    pub fn is_disabled(&self) -> bool {
        self.phase == Phase::Disabled
    }

    /// Shadow CTA-manager state (tests/inspection).
    pub fn cta_manager(&self) -> &CtaManager {
        &self.cta_mgr
    }

    /// Throttle/re-activate events so far.
    pub fn throttle_events(&self) -> u64 {
        self.throttle_events
    }

    fn charge(&self, ctx: &mut PolicyCtx<'_>, pj: f64) {
        ctx.stats.policy_extra_pj += pj;
    }

    /// First register number guaranteed free: above the largest active RN
    /// and above any in-flight restore range.
    fn min_free_rn(&self, ctx: &PolicyCtx<'_>) -> u32 {
        let lrn = ctx.regfile.largest_active_rn().map(|r| r.0 + 1).unwrap_or(0);
        let restoring = self.restoring.iter().map(|&(_, last)| last + 1).max().unwrap_or(0);
        lrn.max(restoring)
    }

    fn refresh_partitions(&mut self, ctx: &mut PolicyCtx<'_>) {
        if self.phase == Phase::VictimCaching {
            let min_free = self.min_free_rn(ctx);
            self.vtt.refresh_partitions(min_free);
        }
    }

    /// Should a victim line with this hashed PC be preserved?
    fn preserve_victim(&self, victim_hpc: u8) -> bool {
        if self.phase != Phase::VictimCaching {
            return false;
        }
        if !self.cfg.mode.selective {
            return true;
        }
        self.selected.contains(&victim_hpc)
    }
}

impl SmPolicy for LinebackerPolicy {
    fn name(&self) -> &'static str {
        "linebacker"
    }

    fn on_hit(&mut self, pc: Pc, _load: LoadId, _line: LineAddr, ctx: &mut PolicyCtx<'_>) {
        // Per-line HPC field update + LM bookkeeping.
        self.charge(ctx, self.cfg.hpc_pj);
        if self.phase == Phase::Monitoring {
            self.lm.record(pc, true);
            self.charge(ctx, self.cfg.lm_pj);
        }
    }

    fn on_miss(
        &mut self,
        pc: Pc,
        _load: LoadId,
        line: LineAddr,
        ctx: &mut PolicyCtx<'_>,
    ) -> MissService {
        match self.phase {
            Phase::Monitoring => {
                // Tag-only probe: counts as an LM hit if the tag was recently
                // evicted, but the data must still come from L2.
                self.charge(ctx, self.cfg.vtt_pj + self.cfg.lm_pj);
                let tag_hit = self.vtt.lookup(line).is_some();
                self.lm.record(pc, tag_hit);
                MissService::ToL2
            }
            Phase::VictimCaching => {
                self.charge(ctx, self.cfg.vtt_pj);
                match self.vtt.lookup(line) {
                    Some(hit) => {
                        // Register-file read for the victim line: sequential
                        // VP searches + arbitration + bank conflicts.
                        let conflict = ctx.regfile.access(hit.rn, ctx.cycle, false);
                        let latency = (hit.vp + 1) * self.cfg.vp_access_latency + 1 + conflict;
                        MissService::VictimHit { extra_latency: latency }
                    }
                    None => MissService::ToL2,
                }
            }
            Phase::Disabled => MissService::ToL2,
        }
    }

    fn on_evict(&mut self, victim: LineAddr, victim_hpc: u8, ctx: &mut PolicyCtx<'_>) -> bool {
        match self.phase {
            Phase::Monitoring => {
                // Keep the tag so re-accesses count as would-be hits; the
                // data is not preserved in this phase.
                self.charge(ctx, self.cfg.vtt_pj);
                self.vtt.insert(victim);
                false
            }
            Phase::VictimCaching => {
                if self.preserve_victim(victim_hpc) {
                    self.charge(ctx, self.cfg.vtt_pj);
                    if let Some(rn) = self.vtt.insert(victim) {
                        // Register write of the preserved line (the
                        // register-to-register move of the paper).
                        ctx.regfile.access(rn, ctx.cycle, true);
                        ctx.regfile.write_contents(rn, victim.0);
                        return true;
                    }
                }
                false
            }
            Phase::Disabled => false,
        }
    }

    fn on_store(&mut self, line: LineAddr, ctx: &mut PolicyCtx<'_>) {
        if self.phase != Phase::Disabled {
            self.charge(ctx, self.cfg.vtt_pj);
            self.vtt.invalidate_store(line);
        }
    }

    fn on_window(&mut self, info: &WindowInfo, ctx: &mut PolicyCtx<'_>) -> Option<u32> {
        self.charge(ctx, self.cfg.cta_mgr_pj);

        // Retire completed restores (their registers are live again).
        let restoring = std::mem::take(&mut self.restoring);
        self.restoring =
            restoring.into_iter().filter(|&(cta, _)| ctx.regfile.is_backed_up(cta)).collect();

        // Phase transitions from the Load Monitor.
        if self.phase == Phase::Monitoring {
            match self.lm.end_window().clone() {
                LmPhase::Selected(set) => {
                    self.selected = set;
                    self.phase = Phase::VictimCaching;
                    self.vtt.set_tag_only(false);
                    if self.cfg.mode.throttling {
                        // Proactive first throttle (§3.2): assume throttling
                        // helps a cache-sensitive kernel, then probe a
                        // bounded range of active-CTA counts, one per
                        // decision window, before locking at the best level.
                        let start = (info.active_ctas + info.inactive_ctas).max(1);
                        self.probe_floor = (start / 2).max(1);
                        self.probe_records.push((start, info.ipc));
                        self.limit = Some(start.saturating_sub(1).max(1));
                        self.throttle_events += 1;
                        // Prime the IPC baseline.
                        self.ipc.end_window(info.ipc);
                        self.best_ipc = info.ipc;
                    }
                }
                LmPhase::Disabled => {
                    self.phase = Phase::Disabled;
                }
                LmPhase::Monitoring => {}
            }
        } else if self.phase == Phase::VictimCaching && self.cfg.mode.throttling {
            // Alternate decision windows with settle windows: the window in
            // which a CTA switch happens is polluted by backup/restore
            // traffic and cache refill, so its IPC is not compared.
            self.settle = !self.settle;
            if self.settle {
                self.refresh_partitions(ctx);
                return self.limit;
            }
            if let Some(limit) = self.limit {
                let resident = (info.active_ctas + info.inactive_ctas).max(1);
                let _ = self.ipc.end_window(info.ipc);
                let var = self.ipc.last_var();
                self.best_ipc = self.best_ipc.max(info.ipc);
                if !self.locked {
                    // Probe phase: record this window's IPC against the
                    // limit that produced it, then step one CTA deeper —
                    // until the floor is reached or IPC collapses (>40 %
                    // below the best seen), at which point the limit locks
                    // at the best-IPC level recorded.
                    self.probe_records.push((limit, info.ipc));
                    let collapse = info.ipc < self.best_ipc * 0.6;
                    // Early abort: if three probed levels have not beaten
                    // the unthrottled starting IPC, the app does not respond
                    // to throttling — stop paying the probe cost.
                    let unpromising = self.probe_records.len() >= 4
                        && self.best_ipc <= self.probe_records[0].1 * 1.02;
                    if limit > self.probe_floor && !collapse && !unpromising {
                        self.limit = Some(limit - 1);
                        self.throttle_events += 1;
                    } else {
                        let best = self
                            .probe_records
                            .iter()
                            .copied()
                            .max_by(|a, b| a.1.total_cmp(&b.1))
                            .map(|(l, _)| l)
                            .unwrap_or(resident);
                        self.limit = Some(best.min(resident));
                        self.locked = true;
                        self.throttle_events += 1;
                    }
                } else if var < self.cfg.ipc_lower {
                    // Locked: only back off when IPC clearly degrades
                    // (Equation 1 below the lower bound), e.g. toward the
                    // kernel tail when parallelism runs out.
                    self.limit = Some((limit + 1).min(resident));
                    self.throttle_events += 1;
                    self.backed_off = true;
                }
            }
        }

        self.refresh_partitions(ctx);
        self.limit
    }

    fn on_cta_launch(&mut self, cta: CtaId, first_reg: RegNum, _ctx: &mut PolicyCtx<'_>) {
        self.cta_mgr.on_launch(cta, first_reg);
    }

    fn on_cta_deactivate(&mut self, cta: CtaId, ctx: &mut PolicyCtx<'_>) {
        self.charge(ctx, self.cfg.cta_mgr_pj);
        self.cta_mgr.begin_backup(cta);
    }

    fn on_backup_complete(&mut self, cta: CtaId, ctx: &mut PolicyCtx<'_>) {
        self.charge(ctx, self.cfg.cta_mgr_pj);
        self.cta_mgr.complete_backup(cta);
        // Freed registers may activate more victim partitions.
        self.refresh_partitions(ctx);
    }

    fn on_cta_activate(&mut self, cta: CtaId, ctx: &mut PolicyCtx<'_>) {
        self.charge(ctx, self.cfg.cta_mgr_pj);
        self.cta_mgr.begin_restore(cta);
        if let Some((first, count)) = ctx.regfile.cta_range(cta) {
            self.restoring.push((cta, first.0 + count - 1));
            self.cta_mgr.complete_restore(cta, first);
        }
        // Partitions over the restored range must release immediately so the
        // incoming register state is not clobbered by victim writes.
        self.refresh_partitions(ctx);
    }

    fn on_cta_complete(&mut self, cta: CtaId, ctx: &mut PolicyCtx<'_>) {
        self.cta_mgr.on_complete(cta);
        self.refresh_partitions(ctx);
    }

    fn victim_space_regs(&self) -> u32 {
        self.vtt.victim_regs()
    }

    fn monitor_periods(&self) -> u32 {
        if self.cfg.mode.selective {
            self.lm.windows_run()
        } else {
            0
        }
    }

    fn debug_state(&self) -> String {
        format!(
            "phase={:?} limit={:?} latched={} vps={} victim_regs={} selected={:?}",
            self.phase,
            self.limit,
            self.backed_off,
            self.vtt.active_vps(),
            self.vtt.victim_regs(),
            self.selected,
        )
    }
}

/// Builds a policy factory for Linebacker with the given configuration.
///
/// # Examples
///
/// ```
/// use linebacker::{linebacker_factory, LbConfig};
/// use gpu_sim::config::GpuConfig;
/// use gpu_sim::gpu::run_kernel;
/// use gpu_sim::kernel::KernelBuilder;
/// use gpu_sim::pattern::AccessPattern;
///
/// let kernel = KernelBuilder::new("demo")
///     .grid(4, 2)
///     .load_then_use(AccessPattern::reuse_working_set(8 * 1024, true), 2)
///     .iterations(50)
///     .build()?;
/// let cfg = GpuConfig::default().with_sms(1).with_windows(2_000, 20_000);
/// let stats = run_kernel(cfg, kernel, &linebacker_factory(LbConfig::default()));
/// assert!(stats.instructions > 0);
/// # Ok::<(), String>(())
/// ```
pub fn linebacker_factory(cfg: LbConfig) -> Box<PolicyFactory<'static>> {
    Box::new(move |sm, gpu, kernel| Box::new(LinebackerPolicy::new(cfg.clone(), sm, gpu, kernel)))
}

/// Factory for the "Victim Caching" ablation (no selection, no throttling).
pub fn victim_caching_factory() -> Box<PolicyFactory<'static>> {
    linebacker_factory(LbConfig::with_mode(LbMode::victim_caching_only()))
}

/// Factory for the "Selective Victim Caching" ablation (selection, no
/// throttling; statically-unused registers only).
pub fn selective_victim_caching_factory() -> Box<PolicyFactory<'static>> {
    linebacker_factory(LbConfig::with_mode(LbMode::selective_victim_caching()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::regfile::RegFile;
    use gpu_sim::stats::SimStats;
    use gpu_sim::types::hashed_pc5;

    fn fixture() -> (LinebackerPolicy, RegFile, SimStats, KernelSpec, GpuConfig) {
        let gpu = GpuConfig::default();
        let kernel = gpu_sim::kernel::KernelBuilder::new("k")
            .grid(8, 4)
            .regs_per_thread(32)
            .load_then_use(gpu_sim::pattern::AccessPattern::reuse_working_set(8192, true), 1)
            .iterations(10)
            .build()
            .unwrap();
        let lb = LinebackerPolicy::new(LbConfig::default(), SmId(0), &gpu, &kernel);
        let rf = RegFile::new(2048, 32, 32);
        (lb, rf, SimStats::default(), kernel, gpu)
    }

    fn window(active: u32, inactive: u32, ipc: f64, index: u32) -> WindowInfo {
        WindowInfo {
            index,
            cycles: 50_000,
            instructions: (ipc * 50_000.0) as u64,
            ipc,
            active_ctas: active,
            inactive_ctas: inactive,
        }
    }

    /// Drives the policy through monitoring to selection of `pc`.
    fn select_load(lb: &mut LinebackerPolicy, rf: &mut RegFile, stats: &mut SimStats, pc: Pc) {
        for i in 0..2 {
            for j in 0..100 {
                let mut ctx = PolicyCtx { cycle: j, sm: SmId(0), regfile: rf, stats };
                if j % 2 == 0 {
                    lb.on_hit(pc, LoadId(0), LineAddr(j), &mut ctx);
                } else {
                    lb.on_miss(pc, LoadId(0), LineAddr(1_000_000 + j), &mut ctx);
                }
            }
            let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: rf, stats };
            lb.on_window(&window(8, 0, 1.0, i), &mut ctx);
        }
    }

    #[test]
    fn monitoring_selects_high_locality_load() {
        let (mut lb, mut rf, mut stats, _, _) = fixture();
        let pc = Pc(0x40);
        select_load(&mut lb, &mut rf, &mut stats, pc);
        assert!(lb.selected_hpcs().contains(&hashed_pc5(pc)));
        assert_eq!(lb.monitor_periods(), 2);
        assert!(!lb.is_disabled());
    }

    #[test]
    fn low_locality_disables_linebacker() {
        let (mut lb, mut rf, mut stats, _, _) = fixture();
        let pc = Pc(0x40);
        for i in 0..2 {
            for j in 0..100u64 {
                let mut ctx =
                    PolicyCtx { cycle: j, sm: SmId(0), regfile: &mut rf, stats: &mut stats };
                // All misses, and the lines never repeat: no VTT tag hits.
                lb.on_miss(pc, LoadId(0), LineAddr(10_000 + i as u64 * 1000 + j), &mut ctx);
            }
            let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: &mut rf, stats: &mut stats };
            lb.on_window(&window(8, 0, 1.0, i), &mut ctx);
        }
        assert!(lb.is_disabled());
        // Disabled: no victim service ever.
        let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: &mut rf, stats: &mut stats };
        assert_eq!(lb.on_miss(pc, LoadId(0), LineAddr(10_001), &mut ctx), MissService::ToL2);
    }

    #[test]
    fn monitoring_counts_vtt_tag_hits() {
        // A line evicted and re-accessed during monitoring counts as a hit
        // for the LM even though data comes from L2.
        let (mut lb, mut rf, mut stats, _, _) = fixture();
        let pc = Pc(0x40);
        for i in 0..2 {
            for j in 0..50u64 {
                let line = LineAddr(j);
                let mut ctx =
                    PolicyCtx { cycle: j, sm: SmId(0), regfile: &mut rf, stats: &mut stats };
                // Evict the line, then miss on it: tag hit.
                lb.on_evict(line, 0, &mut ctx);
                lb.on_miss(pc, LoadId(0), line, &mut ctx);
            }
            let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: &mut rf, stats: &mut stats };
            lb.on_window(&window(8, 0, 1.0, i), &mut ctx);
        }
        assert!(!lb.is_disabled(), "VTT tag hits must qualify the load");
    }

    #[test]
    fn victim_hit_after_selection() {
        let (mut lb, mut rf, mut stats, _, _) = fixture();
        let pc = Pc(0x40);
        select_load(&mut lb, &mut rf, &mut stats, pc);
        // Preserve a victim of the selected load and re-access it.
        let line = LineAddr(777);
        let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: &mut rf, stats: &mut stats };
        lb.on_evict(line, hashed_pc5(pc), &mut ctx);
        let svc = lb.on_miss(pc, LoadId(0), line, &mut ctx);
        match svc {
            MissService::VictimHit { extra_latency } => {
                assert!(extra_latency >= lb.config().vp_access_latency);
            }
            other => panic!("expected VictimHit, got {other:?}"),
        }
    }

    #[test]
    fn non_selected_victims_dropped() {
        let (mut lb, mut rf, mut stats, _, _) = fixture();
        let pc = Pc(0x40);
        select_load(&mut lb, &mut rf, &mut stats, pc);
        let streaming_hpc = hashed_pc5(Pc(0x48));
        assert_ne!(streaming_hpc, hashed_pc5(pc));
        let line = LineAddr(888);
        let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: &mut rf, stats: &mut stats };
        lb.on_evict(line, streaming_hpc, &mut ctx);
        assert_eq!(
            lb.on_miss(pc, LoadId(0), line, &mut ctx),
            MissService::ToL2,
            "victims of unselected loads must not be preserved"
        );
    }

    #[test]
    fn store_invalidates_preserved_line() {
        let (mut lb, mut rf, mut stats, _, _) = fixture();
        let pc = Pc(0x40);
        select_load(&mut lb, &mut rf, &mut stats, pc);
        let line = LineAddr(999);
        let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: &mut rf, stats: &mut stats };
        lb.on_evict(line, hashed_pc5(pc), &mut ctx);
        lb.on_store(line, &mut ctx);
        assert_eq!(lb.on_miss(pc, LoadId(0), line, &mut ctx), MissService::ToL2);
    }

    #[test]
    fn proactive_throttle_after_selection() {
        let (mut lb, mut rf, mut stats, _, _) = fixture();
        select_load(&mut lb, &mut rf, &mut stats, Pc(0x40));
        // The selection window already set the proactive limit to 7; the
        // following flat window (var = 0, non-negative) descends once more.
        let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: &mut rf, stats: &mut stats };
        let limit = lb.on_window(&window(7, 1, 1.0, 2), &mut ctx);
        assert_eq!(limit, Some(6), "descent continues while throttling does not hurt");
    }

    #[test]
    fn probe_phase_locks_at_best_limit() {
        let (mut lb, mut rf, mut stats, _, _) = fixture();
        select_load(&mut lb, &mut rf, &mut stats, Pc(0x40));
        let mut run = |ipc: f64,
                       active: u32,
                       inactive: u32,
                       i: u32,
                       rf: &mut RegFile,
                       stats: &mut SimStats| {
            let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: rf, stats };
            lb.on_window(&window(active, inactive, ipc, i), &mut ctx)
        };
        // Selection recorded (8, 1.0) and set the proactive limit 7; probe
        // floor is 8/2 = 4. Each decision window records (limit, ipc) and
        // steps one CTA deeper; settle windows in between are ignored.
        assert_eq!(run(1.10, 7, 1, 2, &mut rf, &mut stats), Some(6)); // (7, 1.10)
        assert_eq!(run(0.10, 6, 2, 3, &mut rf, &mut stats), Some(6)); // settle
        assert_eq!(run(1.40, 6, 2, 4, &mut rf, &mut stats), Some(5)); // (6, 1.40)
        assert_eq!(run(0.10, 5, 3, 5, &mut rf, &mut stats), Some(5)); // settle
        assert_eq!(run(1.20, 5, 3, 6, &mut rf, &mut stats), Some(4)); // (5, 1.20)
        assert_eq!(run(0.10, 4, 4, 7, &mut rf, &mut stats), Some(4)); // settle
                                                                      // Floor reached: lock at the argmax of the records — limit 6.
        assert_eq!(run(0.90, 4, 4, 8, &mut rf, &mut stats), Some(6));
        // Locked: a recovering window holds.
        assert_eq!(run(0.10, 6, 2, 9, &mut rf, &mut stats), Some(6)); // settle
        assert_eq!(run(1.38, 6, 2, 10, &mut rf, &mut stats), Some(6));
        // A clear (>10 %) degradation after lock backs off one CTA.
        assert_eq!(run(0.10, 6, 2, 11, &mut rf, &mut stats), Some(6)); // settle
        assert_eq!(run(1.10, 6, 2, 12, &mut rf, &mut stats), Some(7));
    }

    #[test]
    fn victim_caching_mode_preserves_everything_immediately() {
        let gpu = GpuConfig::default();
        let kernel = gpu_sim::kernel::KernelBuilder::new("k").grid(4, 2).alu(1).build().unwrap();
        let mut lb = LinebackerPolicy::new(
            LbConfig::with_mode(LbMode::victim_caching_only()),
            SmId(0),
            &gpu,
            &kernel,
        );
        let mut rf = RegFile::new(2048, 32, 32);
        let mut stats = SimStats::default();
        let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: &mut rf, stats: &mut stats };
        // No monitoring: preservation works from the first cycle, with any
        // HPC value.
        lb.on_window(&window(4, 0, 1.0, 0), &mut ctx); // activates partitions
        lb.on_evict(LineAddr(5), 31, &mut ctx);
        assert!(matches!(
            lb.on_miss(Pc(0), LoadId(0), LineAddr(5), &mut ctx),
            MissService::VictimHit { .. }
        ));
        assert_eq!(lb.monitor_periods(), 0);
    }

    #[test]
    fn no_throttling_in_svc_mode() {
        let (_, mut rf, mut stats, kernel, gpu) = fixture();
        let mut lb = LinebackerPolicy::new(
            LbConfig::with_mode(LbMode::selective_victim_caching()),
            SmId(0),
            &gpu,
            &kernel,
        );
        select_load(&mut lb, &mut rf, &mut stats, Pc(0x40));
        let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: &mut rf, stats: &mut stats };
        assert_eq!(lb.on_window(&window(8, 0, 2.0, 5), &mut ctx), None);
    }

    #[test]
    fn partitions_track_idle_space() {
        let (mut lb, mut rf, mut stats, _, _) = fixture();
        // Allocate CTAs occupying most of the register file.
        rf.allocate_cta(CtaId(0), 900);
        rf.allocate_cta(CtaId(1), 900);
        select_load(&mut lb, &mut rf, &mut stats, Pc(0x40));
        // LRN = 1799: only registers 1800.. are idle. Partition 7 spans
        // 1855..=2046, partition 6 starts at 1663 (< 1800). So exactly 1 VP.
        assert_eq!(lb.victim_space_regs(), 192);

        // Back up CTA 1: registers 900..1799 freed.
        rf.mark_backed_up(CtaId(1));
        let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: &mut rf, stats: &mut stats };
        lb.on_backup_complete(CtaId(1), &mut ctx);
        // Now idle from 900: partitions with first RN >= 900 are 3..=7
        // (vp2 first RN 895 < 900), i.e. 5 partitions.
        assert_eq!(lb.victim_space_regs(), 5 * 192);
    }

    #[test]
    fn restore_releases_partitions_before_data_arrives() {
        let (mut lb, mut rf, mut stats, _, _) = fixture();
        rf.allocate_cta(CtaId(0), 900);
        rf.allocate_cta(CtaId(1), 900);
        select_load(&mut lb, &mut rf, &mut stats, Pc(0x40));
        rf.mark_backed_up(CtaId(1));
        let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: &mut rf, stats: &mut stats };
        lb.on_backup_complete(CtaId(1), &mut ctx);
        assert_eq!(lb.victim_space_regs(), 5 * 192);
        // Begin re-activation: partitions over 900..1799 must release NOW.
        let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: &mut rf, stats: &mut stats };
        lb.on_cta_activate(CtaId(1), &mut ctx);
        assert_eq!(lb.victim_space_regs(), 192);
    }

    #[test]
    fn energy_charged_for_structures() {
        let (mut lb, mut rf, mut stats, _, _) = fixture();
        select_load(&mut lb, &mut rf, &mut stats, Pc(0x40));
        assert!(stats.policy_extra_pj > 0.0);
    }

    #[test]
    fn cta_manager_shadows_launch() {
        let (mut lb, mut rf, mut stats, _, _) = fixture();
        let mut ctx = PolicyCtx { cycle: 0, sm: SmId(0), regfile: &mut rf, stats: &mut stats };
        lb.on_cta_launch(CtaId(0), RegNum(0), &mut ctx);
        assert!(lb.cta_manager().entry(CtaId(0)).active);
    }
}
