//! CTA Throttling Logic (CTL): the IPC monitor and the CTA manager
//! bookkeeping structures of Figure 8.

use gpu_sim::types::{CtaId, RegNum};

/// Decision produced at each window boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThrottleDecision {
    /// Throttle one more CTA (IPC improved by more than the upper bound).
    ThrottleOne,
    /// Re-activate one throttled CTA (IPC dropped below the lower bound).
    ActivateOne,
    /// Keep the current active count.
    Hold,
}

/// The IPC monitor: tracks the previous/current window IPC and applies the
/// +/-10 % variation bounds of Table 3.
#[derive(Debug, Clone)]
pub struct IpcMonitor {
    upper: f64,
    lower: f64,
    prev_ipc: Option<f64>,
    cur_ipc: f64,
    last_var: f64,
}

impl IpcMonitor {
    /// Creates a monitor with the given variation bounds.
    pub fn new(upper: f64, lower: f64) -> Self {
        assert!(upper > lower, "upper bound must exceed lower bound");
        IpcMonitor { upper, lower, prev_ipc: None, cur_ipc: 0.0, last_var: 0.0 }
    }

    /// Equation 1: fractional IPC variation between two windows.
    pub fn ipc_var(prev: f64, cur: f64) -> f64 {
        if prev <= 0.0 {
            0.0
        } else {
            (cur - prev) / prev
        }
    }

    /// Feeds the IPC of a completed window and returns the throttling
    /// decision. The first window establishes the baseline and holds.
    pub fn end_window(&mut self, ipc: f64) -> ThrottleDecision {
        let prev = self.prev_ipc;
        self.prev_ipc = Some(ipc);
        self.cur_ipc = ipc;
        let Some(prev) = prev else {
            self.last_var = 0.0;
            return ThrottleDecision::Hold;
        };
        let var = Self::ipc_var(prev, ipc);
        self.last_var = var;
        if var > self.upper {
            ThrottleDecision::ThrottleOne
        } else if var < self.lower {
            ThrottleDecision::ActivateOne
        } else {
            ThrottleDecision::Hold
        }
    }

    /// IPC of the most recent window.
    pub fn current_ipc(&self) -> f64 {
        self.cur_ipc
    }

    /// Fractional IPC variation computed by the last [`IpcMonitor::end_window`].
    pub fn last_var(&self) -> f64 {
        self.last_var
    }
}

/// Common Info of the CTA manager: registers per CTA (#reg), the Largest
/// active Register Number (LRN), and the Backup Pointer (BP).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CommonInfo {
    /// Warp registers used by one CTA.
    pub regs_per_cta: u32,
    /// Largest register number of any active CTA.
    pub lrn: u32,
    /// Next off-chip byte address for register backup.
    pub bp: u64,
}

/// Per-CTA Info entry: active bit, first register number, backup address,
/// and backup-complete bit.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PerCtaInfo {
    /// ACT: is the CTA active?
    pub active: bool,
    /// FRN: first register number (None once backed up/flushed).
    pub frn: Option<RegNum>,
    /// BA: backup byte address in off-chip memory.
    pub backup_addr: Option<u64>,
    /// C: backup completed.
    pub backup_complete: bool,
}

/// The CTA manager: mirrors the paper's bookkeeping for backup/restore.
#[derive(Debug, Clone)]
pub struct CtaManager {
    /// Common info block.
    pub common: CommonInfo,
    entries: Vec<PerCtaInfo>,
    backups: u64,
    restores: u64,
}

impl CtaManager {
    /// Creates a manager for `slots` hardware CTA ids, with `regs_per_cta`
    /// registers per CTA and the initial backup pointer `bp0`.
    pub fn new(slots: u32, regs_per_cta: u32, bp0: u64) -> Self {
        CtaManager {
            common: CommonInfo { regs_per_cta, lrn: 0, bp: bp0 },
            entries: vec![PerCtaInfo::default(); slots as usize],
            backups: 0,
            restores: 0,
        }
    }

    /// Entry for a CTA.
    pub fn entry(&self, cta: CtaId) -> &PerCtaInfo {
        &self.entries[cta.0 as usize]
    }

    /// Marks a CTA as launched with its first register number.
    pub fn on_launch(&mut self, cta: CtaId, frn: RegNum) {
        let e = &mut self.entries[cta.0 as usize];
        e.active = true;
        e.frn = Some(frn);
        e.backup_addr = None;
        e.backup_complete = false;
        self.common.lrn = self.common.lrn.max(frn.0 + self.common.regs_per_cta.saturating_sub(1));
    }

    /// Begins backing up a throttled CTA. Updates BP by `#reg x 128` and
    /// records BA. Returns the byte address the registers are saved at.
    pub fn begin_backup(&mut self, cta: CtaId) -> u64 {
        let addr = self.common.bp;
        let e = &mut self.entries[cta.0 as usize];
        e.active = false;
        e.backup_addr = Some(addr);
        e.backup_complete = false;
        self.common.bp += self.common.regs_per_cta as u64 * 128;
        self.backups += 1;
        addr
    }

    /// Completes a backup: flushes FRN and sets the C bit.
    pub fn complete_backup(&mut self, cta: CtaId) {
        let e = &mut self.entries[cta.0 as usize];
        e.frn = None;
        e.backup_complete = true;
        self.recompute_lrn();
    }

    /// Begins restoring a CTA from `BP - #reg x 128`; returns the address
    /// read from and rewinds BP.
    pub fn begin_restore(&mut self, cta: CtaId) -> u64 {
        let bytes = self.common.regs_per_cta as u64 * 128;
        self.common.bp = self.common.bp.saturating_sub(bytes);
        let e = &mut self.entries[cta.0 as usize];
        e.backup_complete = false;
        self.restores += 1;
        e.backup_addr.unwrap_or(self.common.bp)
    }

    /// Completes a restore: the CTA becomes active again at `frn`.
    pub fn complete_restore(&mut self, cta: CtaId, frn: RegNum) {
        let e = &mut self.entries[cta.0 as usize];
        e.active = true;
        e.frn = Some(frn);
        e.backup_addr = None;
        self.common.lrn = self.common.lrn.max(frn.0 + self.common.regs_per_cta.saturating_sub(1));
    }

    /// A CTA finished; clears its entry.
    pub fn on_complete(&mut self, cta: CtaId) {
        self.entries[cta.0 as usize] = PerCtaInfo::default();
        self.recompute_lrn();
    }

    fn recompute_lrn(&mut self) {
        self.common.lrn = self
            .entries
            .iter()
            .filter(|e| e.active)
            .filter_map(|e| e.frn)
            .map(|f| f.0 + self.common.regs_per_cta.saturating_sub(1))
            .max()
            .unwrap_or(0);
    }

    /// (backups begun, restores begun).
    pub fn transfer_counts(&self) -> (u64, u64) {
        (self.backups, self.restores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_var_equation() {
        assert!((IpcMonitor::ipc_var(2.0, 2.5) - 0.25).abs() < 1e-12);
        assert!((IpcMonitor::ipc_var(2.0, 1.5) + 0.25).abs() < 1e-12);
        assert_eq!(IpcMonitor::ipc_var(0.0, 5.0), 0.0);
    }

    #[test]
    fn first_window_holds() {
        let mut m = IpcMonitor::new(0.10, -0.10);
        assert_eq!(m.end_window(1.0), ThrottleDecision::Hold);
    }

    #[test]
    fn improvement_above_upper_throttles() {
        let mut m = IpcMonitor::new(0.10, -0.10);
        m.end_window(1.0);
        assert_eq!(m.end_window(1.2), ThrottleDecision::ThrottleOne);
    }

    #[test]
    fn drop_below_lower_activates() {
        let mut m = IpcMonitor::new(0.10, -0.10);
        m.end_window(1.0);
        assert_eq!(m.end_window(0.8), ThrottleDecision::ActivateOne);
    }

    #[test]
    fn small_variation_holds() {
        let mut m = IpcMonitor::new(0.10, -0.10);
        m.end_window(1.0);
        assert_eq!(m.end_window(1.05), ThrottleDecision::Hold);
        assert_eq!(m.end_window(1.0), ThrottleDecision::Hold);
    }

    #[test]
    #[should_panic(expected = "upper bound")]
    fn inverted_bounds_panic() {
        let _ = IpcMonitor::new(-0.1, 0.1);
    }

    #[test]
    fn backup_advances_bp_and_restore_rewinds() {
        let mut m = CtaManager::new(4, 100, 0x1000);
        m.on_launch(CtaId(0), RegNum(0));
        m.on_launch(CtaId(1), RegNum(100));
        assert_eq!(m.common.lrn, 199);

        let a = m.begin_backup(CtaId(1));
        assert_eq!(a, 0x1000);
        assert_eq!(m.common.bp, 0x1000 + 100 * 128);
        m.complete_backup(CtaId(1));
        assert!(m.entry(CtaId(1)).backup_complete);
        assert_eq!(m.entry(CtaId(1)).frn, None);
        assert_eq!(m.common.lrn, 99, "LRN shrinks after backup");

        let r = m.begin_restore(CtaId(1));
        assert_eq!(r, 0x1000, "restore reads where the backup was written");
        assert_eq!(m.common.bp, 0x1000, "BP rewound by #reg x 128");
        m.complete_restore(CtaId(1), RegNum(100));
        assert!(m.entry(CtaId(1)).active);
        assert_eq!(m.common.lrn, 199);
    }

    #[test]
    fn stacked_backups_stack_bp() {
        let mut m = CtaManager::new(4, 50, 0);
        for i in 0..3 {
            m.on_launch(CtaId(i), RegNum(i * 50));
        }
        m.begin_backup(CtaId(2));
        m.begin_backup(CtaId(1));
        assert_eq!(m.common.bp, 2 * 50 * 128);
        assert_eq!(m.entry(CtaId(2)).backup_addr, Some(0));
        assert_eq!(m.entry(CtaId(1)).backup_addr, Some(50 * 128));
    }

    #[test]
    fn complete_clears_entry() {
        let mut m = CtaManager::new(2, 10, 0);
        m.on_launch(CtaId(0), RegNum(0));
        m.on_complete(CtaId(0));
        assert_eq!(*m.entry(CtaId(0)), PerCtaInfo::default());
        assert_eq!(m.common.lrn, 0);
    }

    #[test]
    fn transfer_counts_tracked() {
        let mut m = CtaManager::new(2, 10, 0);
        m.on_launch(CtaId(0), RegNum(0));
        m.begin_backup(CtaId(0));
        m.begin_restore(CtaId(0));
        assert_eq!(m.transfer_counts(), (1, 1));
    }
}
