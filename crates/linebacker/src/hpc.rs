//! Hashed PC (HPC): the 5-bit XOR-fold of a load's PC.
//!
//! The fold itself lives in `gpu_sim::types::hashed_pc5` because the L1
//! tags each line with the HPC of its last accessor; this module re-exports
//! it and documents the aliasing behaviour the paper relies on.

pub use gpu_sim::types::hashed_pc5;

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::types::Pc;

    #[test]
    fn always_five_bits() {
        for pc in (0..100_000u32).step_by(97) {
            assert!(hashed_pc5(Pc(pc)) < 32);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(hashed_pc5(Pc(0xdead_beef)), hashed_pc5(Pc(0xdead_beef)));
    }

    #[test]
    fn distinguishes_typical_kernel_pcs() {
        // The builder assigns PCs with stride 8; a kernel's first 32 loads
        // must map to distinct LM entries (the paper's premise that 5 bits
        // suffice for the <32 global loads of real kernels).
        let mut seen = std::collections::HashSet::new();
        for i in 0..32u32 {
            seen.insert(hashed_pc5(Pc(i * 8)));
        }
        assert_eq!(seen.len(), 32, "stride-8 PCs must not alias within 32 loads");
    }

    #[test]
    fn folds_high_bits() {
        // PCs differing only in bits above 5 still influence the hash.
        assert_ne!(hashed_pc5(Pc(0)), hashed_pc5(Pc(1 << 20)));
    }
}
