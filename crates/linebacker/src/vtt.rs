//! The Victim Tag Table (VTT): set-associative tag partitions mapping victim
//! lines to idle warp registers (paper §4, §4.1).
//!
//! The VTT mirrors the L1's 48 sets. It is built from partitions (VPs) of
//! `vp_assoc` ways each; a partition can hold data only when 192 consecutive
//! idle registers (24 KB) back it. During the monitoring period the VTT runs
//! in *tag-only* mode: it remembers recently evicted tags so the Load Monitor
//! can count would-be hits, but no data is preserved.
//!
//! The register number backing a hit in partition `N`, set `X`, way `Y` is
//! Equation 2 of the paper:
//!
//! ```text
//! RN = Offset + N * entries_per_vp + X * ways + Y        (Offset = 511)
//! ```

use gpu_sim::types::{Cycle, LineAddr, RegNum};

use crate::config::LbConfig;

/// One way of a VTT set.
#[derive(Debug, Clone, Copy, Default)]
struct VttWay {
    valid: bool,
    /// Tag present but its data was invalidated by a store; the slot is
    /// reused in priority (paper §4 "Delay Considerations" store policy).
    invalidated: bool,
    line: LineAddr,
    last_use: Cycle,
}

/// Result of a VTT lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VttHit {
    /// Which partition matched (0-based); search latency is
    /// `(vp + 1) * vp_access_latency`.
    pub vp: u32,
    /// The backing register computed by Equation 2.
    pub rn: RegNum,
}

/// The Victim Tag Table of one SM.
#[derive(Debug)]
pub struct Vtt {
    cfg: LbConfig,
    /// `partitions[vp][set][way]`.
    partitions: Vec<Vec<Vec<VttWay>>>,
    /// Partitions currently backed by idle register space (count, starting
    /// at `first_active`).
    active_vps: u32,
    /// Index of the first partition whose register range is free.
    first_active: u32,
    /// Tag-only mode (monitoring period): all partitions store tags, none
    /// store data.
    tag_only: bool,
    tick: Cycle,
    hits: u64,
    misses: u64,
    insertions: u64,
    store_invalidations: u64,
}

impl Vtt {
    /// Creates the VTT with every partition present but none active.
    pub fn new(cfg: &LbConfig) -> Self {
        let vps = cfg.max_vps() as usize;
        let sets = cfg.vtt_sets as usize;
        let ways = cfg.vp_assoc as usize;
        Vtt {
            cfg: cfg.clone(),
            partitions: (0..vps)
                .map(|_| (0..sets).map(|_| vec![VttWay::default(); ways]).collect())
                .collect(),
            active_vps: 0,
            first_active: cfg.max_vps(),
            tag_only: true,
            tick: 0,
            hits: 0,
            misses: 0,
            insertions: 0,
            store_invalidations: 0,
        }
    }

    /// Equation 2: the register number backing `(vp, set, way)`.
    pub fn reg_of(&self, vp: u32, set: u32, way: u32) -> RegNum {
        RegNum(self.cfg.rn_offset + vp * self.cfg.entries_per_vp() + set * self.cfg.vp_assoc + way)
    }

    /// First register number a partition needs.
    pub fn vp_first_rn(&self, vp: u32) -> RegNum {
        self.reg_of(vp, 0, 0)
    }

    /// Last register number a partition needs.
    pub fn vp_last_rn(&self, vp: u32) -> RegNum {
        self.reg_of(vp, self.cfg.vtt_sets - 1, self.cfg.vp_assoc - 1)
    }

    /// Switches to tag-only (monitoring) mode.
    pub fn set_tag_only(&mut self, tag_only: bool) {
        if self.tag_only != tag_only {
            self.tag_only = tag_only;
            // Mode change discards all contents: monitoring tags carry no
            // data, and stale tags must not produce false data hits.
            self.flush_all();
        }
    }

    /// Is the VTT in tag-only mode?
    pub fn tag_only(&self) -> bool {
        self.tag_only
    }

    /// Number of partitions currently usable for data.
    pub fn active_vps(&self) -> u32 {
        self.active_vps
    }

    /// Registers currently dedicated to victim storage.
    pub fn victim_regs(&self) -> u32 {
        if self.tag_only {
            0
        } else {
            self.active_vps * self.cfg.regs_per_vp()
        }
    }

    /// Recomputes the active-partition prefix from the first free register
    /// number (`min_free_rn`): partition `n` is active iff its whole RN range
    /// lies at or above `min_free_rn`. Deactivated partitions are flushed.
    pub fn refresh_partitions(&mut self, min_free_rn: u32) {
        for vp in 0..self.cfg.max_vps() {
            if self.vp_first_rn(vp).0 >= min_free_rn {
                // Partitions activate only as a contiguous prefix-from-here
                // region; since RN ranges ascend with vp, once one is free
                // the rest are too.
                let active = self.cfg.max_vps() - vp;
                // Flush everything below (now owned by live registers).
                for dead in 0..vp {
                    self.flush_vp(dead);
                }
                // Re-index: partitions below `vp` are inactive. We keep the
                // simple model "active partitions are vp..max". To preserve
                // the sequential-search order semantics we instead treat the
                // *count* of active partitions; lookups scan only active
                // ones starting at `first_active`.
                self.first_active = vp;
                self.active_vps = active;
                return;
            }
        }
        for vp in 0..self.cfg.max_vps() {
            self.flush_vp(vp);
        }
        self.first_active = self.cfg.max_vps();
        self.active_vps = 0;
    }

    fn flush_vp(&mut self, vp: u32) {
        for set in &mut self.partitions[vp as usize] {
            for way in set.iter_mut() {
                *way = VttWay::default();
            }
        }
    }

    fn flush_all(&mut self) {
        for vp in 0..self.cfg.max_vps() {
            self.flush_vp(vp);
        }
    }

    fn set_index(&self, line: LineAddr) -> usize {
        (line.0 % self.cfg.vtt_sets as u64) as usize
    }

    fn search_range(&self) -> std::ops::Range<u32> {
        if self.tag_only {
            0..self.cfg.max_vps()
        } else {
            self.first_active..self.first_active + self.active_vps
        }
    }

    /// Looks up `line`. On a hit returns the matching partition (for search
    /// latency) and the backing register; updates LRU.
    pub fn lookup(&mut self, line: LineAddr) -> Option<VttHit> {
        self.tick += 1;
        let set = self.set_index(line);
        let range = self.search_range();
        let first = range.start;
        for vp in range {
            let ways = &mut self.partitions[vp as usize][set];
            for (w, way) in ways.iter_mut().enumerate() {
                if way.valid && !way.invalidated && way.line == line {
                    way.last_use = self.tick;
                    self.hits += 1;
                    return Some(VttHit {
                        vp: vp - first,
                        rn: self.cfg_reg(vp, set as u32, w as u32),
                    });
                }
            }
        }
        self.misses += 1;
        None
    }

    fn cfg_reg(&self, vp: u32, set: u32, way: u32) -> RegNum {
        self.reg_of(vp, set, way)
    }

    /// Inserts the tag (and, in data mode, implicitly the line data) of an
    /// evicted victim. Returns the backing register chosen, or `None` when
    /// no partition is available. Invalidated slots are reused in priority;
    /// otherwise the LRU way across active partitions of the set is
    /// replaced.
    pub fn insert(&mut self, line: LineAddr) -> Option<RegNum> {
        let range = self.search_range();
        if range.is_empty() {
            return None;
        }
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(line);

        // Already present? Refresh it.
        for vp in range.clone() {
            for way in self.partitions[vp as usize][set].iter_mut() {
                if way.valid && way.line == line {
                    way.last_use = tick;
                    way.invalidated = false;
                    return None;
                }
            }
        }

        // Priority 1: an invalidated or empty slot.
        for vp in range.clone() {
            for (w, way) in self.partitions[vp as usize][set].iter_mut().enumerate() {
                if !way.valid || way.invalidated {
                    *way = VttWay { valid: true, invalidated: false, line, last_use: tick };
                    self.insertions += 1;
                    return Some(self.cfg_reg(vp, set as u32, w as u32));
                }
            }
        }

        // Priority 2: global LRU across the set's active ways.
        let mut victim: Option<(u32, u32, Cycle)> = None;
        for vp in range {
            for (w, way) in self.partitions[vp as usize][set].iter().enumerate() {
                let lu = way.last_use;
                if victim.map(|(_, _, best)| lu < best).unwrap_or(true) {
                    victim = Some((vp, w as u32, lu));
                }
            }
        }
        let (vp, w, _) = victim.expect("nonempty range has ways");
        self.partitions[vp as usize][set][w as usize] =
            VttWay { valid: true, invalidated: false, line, last_use: tick };
        self.insertions += 1;
        Some(self.cfg_reg(vp, set as u32, w))
    }

    /// A store wrote `line`: invalidate any preserved copy (victim data is
    /// never dirty). Returns true if a copy existed.
    pub fn invalidate_store(&mut self, line: LineAddr) -> bool {
        let set = self.set_index(line);
        let range = self.search_range();
        for vp in range {
            for way in self.partitions[vp as usize][set].iter_mut() {
                if way.valid && !way.invalidated && way.line == line {
                    way.invalidated = true;
                    self.store_invalidations += 1;
                    return true;
                }
            }
        }
        false
    }

    /// (hits, misses, insertions, store invalidations).
    pub fn stats(&self) -> (u64, u64, u64, u64) {
        (self.hits, self.misses, self.insertions, self.store_invalidations)
    }

    /// Valid, non-invalidated entries currently held.
    pub fn occupancy(&self) -> usize {
        self.partitions.iter().flatten().flatten().filter(|w| w.valid && !w.invalidated).count()
    }

    /// Index of the first active partition.
    pub fn first_active(&self) -> u32 {
        self.first_active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_vtt(active_from_rn: u32) -> Vtt {
        let mut v = Vtt::new(&LbConfig::default());
        v.set_tag_only(false);
        v.refresh_partitions(active_from_rn);
        v
    }

    #[test]
    fn equation2_rn_mapping() {
        let v = Vtt::new(&LbConfig::default());
        // RN = 511 + N*192 + X*4 + Y
        assert_eq!(v.reg_of(0, 0, 0), RegNum(511));
        assert_eq!(v.reg_of(0, 0, 3), RegNum(514));
        assert_eq!(v.reg_of(0, 1, 0), RegNum(515));
        assert_eq!(v.reg_of(1, 0, 0), RegNum(703));
        assert_eq!(v.reg_of(7, 47, 3), RegNum(511 + 7 * 192 + 47 * 4 + 3));
        // Highest mapped RN stays within the 2048-register file.
        assert!(v.reg_of(7, 47, 3).0 < 2048);
    }

    #[test]
    fn rn_mapping_is_injective() {
        let v = Vtt::new(&LbConfig::default());
        let mut seen = std::collections::HashSet::new();
        for vp in 0..8 {
            for set in 0..48 {
                for way in 0..4 {
                    assert!(seen.insert(v.reg_of(vp, set, way)), "duplicate RN");
                }
            }
        }
        assert_eq!(seen.len(), 1536);
    }

    #[test]
    fn tag_only_mode_has_no_victim_regs() {
        let mut v = Vtt::new(&LbConfig::default());
        assert!(v.tag_only());
        assert_eq!(v.victim_regs(), 0);
        v.insert(LineAddr(5));
        assert!(v.lookup(LineAddr(5)).is_some(), "tags are searchable while monitoring");
    }

    #[test]
    fn mode_switch_flushes() {
        let mut v = Vtt::new(&LbConfig::default());
        v.insert(LineAddr(5));
        v.set_tag_only(false);
        v.refresh_partitions(0);
        assert!(v.lookup(LineAddr(5)).is_none(), "monitoring tags must not leak data hits");
    }

    #[test]
    fn partitions_activate_by_free_space() {
        let mut v = data_vtt(2048);
        assert_eq!(v.active_vps(), 0);
        // Free space from RN 511 onward: all 8 partitions fit.
        v.refresh_partitions(511);
        assert_eq!(v.active_vps(), 8);
        assert_eq!(v.victim_regs(), 1536);
        // Free space only from RN 1000: partitions 0 and 1 (first RNs 511,
        // 703) are unavailable; 895 < 1000 too, so first active is vp 3
        // (first RN 1087).
        v.refresh_partitions(1000);
        assert_eq!(v.first_active(), 3);
        assert_eq!(v.active_vps(), 5);
    }

    #[test]
    fn insert_then_hit_returns_mapped_register() {
        let mut v = data_vtt(511);
        let rn = v.insert(LineAddr(10)).expect("space available");
        let hit = v.lookup(LineAddr(10)).expect("must hit");
        assert_eq!(hit.rn, rn);
        assert_eq!(hit.vp, 0, "first partition searched first");
    }

    #[test]
    fn no_insert_when_no_active_partition() {
        let mut v = data_vtt(2048);
        assert_eq!(v.insert(LineAddr(10)), None);
    }

    #[test]
    fn store_invalidation_blocks_hit_and_slot_reused_first() {
        let mut v = data_vtt(511);
        // Fill set 0 of partition 0 completely (4 ways): lines congruent
        // mod 48.
        for i in 0..4u64 {
            v.insert(LineAddr(i * 48));
        }
        assert!(v.invalidate_store(LineAddr(96)));
        assert!(v.lookup(LineAddr(96)).is_none(), "invalidated entry must not hit");
        // Next insertion to the same set must take the invalidated slot
        // (way 2 of vp 0) rather than evicting an LRU entry.
        let rn = v.insert(LineAddr(9 * 48)).unwrap();
        let expect = v.reg_of(0, 0, 2);
        assert_eq!(rn, expect);
        // The other three original lines still hit.
        for i in [0u64, 1, 3] {
            assert!(v.lookup(LineAddr(i * 48)).is_some());
        }
    }

    #[test]
    fn lru_eviction_across_partitions() {
        let cfg = LbConfig::with_vp_assoc(1); // 1-way: 32 partitions
        let mut v = Vtt::new(&cfg);
        v.set_tag_only(false);
        v.refresh_partitions(511);
        assert_eq!(v.active_vps(), 32);
        // Fill all 32 ways of set 0.
        for i in 0..32u64 {
            v.insert(LineAddr(i * 48));
        }
        // Touch all but line 0 so line 0 is LRU.
        for i in 1..32u64 {
            v.lookup(LineAddr(i * 48));
        }
        v.insert(LineAddr(99 * 48));
        assert!(v.lookup(LineAddr(0)).is_none(), "LRU line must be evicted");
        assert!(v.lookup(LineAddr(99 * 48)).is_some());
    }

    #[test]
    fn sequential_search_reports_partition_index() {
        let cfg = LbConfig::with_vp_assoc(1);
        let mut v = Vtt::new(&cfg);
        v.set_tag_only(false);
        v.refresh_partitions(511);
        // Fill ways in partitions 0 and 1 for set 0.
        v.insert(LineAddr(0));
        v.insert(LineAddr(48));
        let h0 = v.lookup(LineAddr(0)).unwrap();
        let h1 = v.lookup(LineAddr(48)).unwrap();
        assert_eq!(h0.vp, 0);
        assert_eq!(h1.vp, 1, "second line landed in the next partition");
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut v = data_vtt(511);
        v.insert(LineAddr(7));
        assert_eq!(v.insert(LineAddr(7)), None, "duplicate insert is a refresh");
        assert_eq!(v.occupancy(), 1);
    }

    #[test]
    fn deactivated_partitions_are_flushed() {
        let mut v = data_vtt(511);
        v.insert(LineAddr(3));
        // Registers reclaimed: only partitions from RN 1500 remain.
        v.refresh_partitions(1500);
        assert!(v.lookup(LineAddr(3)).is_none());
    }
}
