//! The 6-entry register backup/restore buffer (paper §4, "Delay
//! Considerations").
//!
//! Register state moving between the register file and off-chip memory is
//! staged through a small buffer so the CTA switch is not serialized on
//! memory latency: registers drain into the buffer at one per cycle and the
//! buffer empties asynchronously toward memory (the DRAM queue models the
//! actual transfer). The same buffer absorbs bank-conflict delays on restore.

use std::collections::VecDeque;

use gpu_sim::types::{Cycle, RegNum};

/// Direction of a staged transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferDir {
    /// Register file -> off-chip memory (CTA deactivation).
    Backup,
    /// Off-chip memory -> register file (CTA re-activation).
    Restore,
}

/// One staged line: a register number and its target/source byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferEntry {
    /// The warp register moved.
    pub reg: RegNum,
    /// Off-chip byte address.
    pub addr: u64,
    /// Direction.
    pub dir: TransferDir,
}

/// The 6-entry staging buffer.
#[derive(Debug, Clone)]
pub struct BackupBuffer {
    capacity: usize,
    entries: VecDeque<BufferEntry>,
    accepted: u64,
    drained: u64,
    stalls: u64,
}

impl Default for BackupBuffer {
    fn default() -> Self {
        Self::new(6)
    }
}

impl BackupBuffer {
    /// Creates a buffer with `capacity` entries (6 in the paper).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        BackupBuffer {
            capacity,
            entries: VecDeque::with_capacity(capacity),
            accepted: 0,
            drained: 0,
            stalls: 0,
        }
    }

    /// Tries to stage a transfer; returns false (a stall) when full.
    pub fn push(&mut self, entry: BufferEntry) -> bool {
        if self.entries.len() >= self.capacity {
            self.stalls += 1;
            return false;
        }
        self.entries.push_back(entry);
        self.accepted += 1;
        true
    }

    /// Drains up to `per_cycle` entries toward memory, invoking `sink` for
    /// each. Returns the number drained.
    pub fn drain(
        &mut self,
        per_cycle: usize,
        _cycle: Cycle,
        mut sink: impl FnMut(BufferEntry),
    ) -> usize {
        let n = per_cycle.min(self.entries.len());
        for _ in 0..n {
            let e = self.entries.pop_front().expect("len checked");
            self.drained += 1;
            sink(e);
        }
        n
    }

    /// Entries currently staged.
    pub fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// (accepted, drained, stalls).
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.accepted, self.drained, self.stalls)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(reg: u32) -> BufferEntry {
        BufferEntry { reg: RegNum(reg), addr: reg as u64 * 128, dir: TransferDir::Backup }
    }

    #[test]
    fn capacity_is_six_by_default() {
        let mut b = BackupBuffer::default();
        for i in 0..6 {
            assert!(b.push(e(i)));
        }
        assert!(!b.push(e(6)), "seventh entry must stall");
        assert_eq!(b.stats().2, 1);
    }

    #[test]
    fn drain_preserves_fifo_order() {
        let mut b = BackupBuffer::default();
        for i in 0..4 {
            b.push(e(i));
        }
        let mut seen = Vec::new();
        b.drain(2, 0, |x| seen.push(x.reg.0));
        assert_eq!(seen, vec![0, 1]);
        b.drain(10, 1, |x| seen.push(x.reg.0));
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert!(b.is_empty());
    }

    #[test]
    fn drain_frees_capacity() {
        let mut b = BackupBuffer::default();
        for i in 0..6 {
            b.push(e(i));
        }
        b.drain(3, 0, |_| {});
        assert_eq!(b.occupancy(), 3);
        assert!(b.push(e(10)));
    }

    #[test]
    fn stats_track_flow() {
        let mut b = BackupBuffer::default();
        b.push(e(0));
        b.push(e(1));
        b.drain(1, 0, |_| {});
        let (acc, dr, st) = b.stats();
        assert_eq!((acc, dr, st), (2, 1, 0));
    }
}
