//! The Load Monitor (LM): per-load locality classification (paper §4, §4.1).
//!
//! A 32-entry table indexed by the 5-bit hashed PC counts, per static load,
//! the hits (in L1 *or* the victim tag table) and misses within a monitoring
//! window. A load whose hit ratio exceeds the threshold in two *consecutive*
//! windows is classified high-locality; the set of such loads becomes the
//! victim-caching filter.
//!
//! The four design rules from §3.2 are implemented exactly:
//!
//! 1. no cap on how many loads may be tagged;
//! 2. the *same set* must qualify in both windows — if only a subset
//!    re-qualifies, nothing is tagged and monitoring continues;
//! 3. if no load qualifies in the first two windows, Linebacker disables
//!    itself (the kernel is deemed cache-insensitive);
//! 4. while at least one load qualifies per window, monitoring continues
//!    until two consecutive windows agree.

use gpu_sim::types::{hashed_pc5, Pc};

/// One LM entry: PC, hit/miss counters, and the 2-bit valid history.
#[derive(Debug, Clone, Copy, Default)]
pub struct LmEntry {
    /// Full PC of the first load that touched this entry.
    pub pc: Option<Pc>,
    /// Hits (L1 or VTT) this window.
    pub hits: u32,
    /// Misses this window.
    pub misses: u32,
    /// Valid bit of the current window (bit 1 of the 2-bit field).
    pub valid_cur: bool,
    /// Valid bit shifted from the previous window (bit 2).
    pub valid_prev: bool,
}

impl LmEntry {
    /// Hit ratio of the current window.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Classification progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LmPhase {
    /// Still monitoring; selection not yet converged.
    Monitoring,
    /// Converged: the given hashed PCs are the high-locality loads.
    Selected(Vec<u8>),
    /// No high-locality load found in the first two windows; Linebacker is
    /// disabled for this kernel.
    Disabled,
}

/// The Load Monitor.
#[derive(Debug, Clone)]
pub struct LoadMonitor {
    entries: Vec<LmEntry>,
    threshold: f64,
    phase: LmPhase,
    windows_run: u32,
    accesses: u64,
}

impl LoadMonitor {
    /// Creates a monitor with `entries` slots (32: the 5-bit HPC space) and
    /// the given hit-ratio threshold (0.20 in Table 3).
    pub fn new(entries: u32, threshold: f64) -> Self {
        LoadMonitor {
            entries: vec![LmEntry::default(); entries as usize],
            threshold,
            phase: LmPhase::Monitoring,
            windows_run: 0,
            accesses: 0,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> &LmPhase {
        &self.phase
    }

    /// True while hit/miss events should still be recorded.
    pub fn monitoring(&self) -> bool {
        self.phase == LmPhase::Monitoring
    }

    /// Monitoring windows completed before convergence (Figure 9).
    pub fn windows_run(&self) -> u32 {
        self.windows_run
    }

    /// Total recorded accesses (consistency checks).
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Is `hpc` in the selected high-locality set?
    pub fn is_selected(&self, hpc: u8) -> bool {
        match &self.phase {
            LmPhase::Selected(set) => set.contains(&hpc),
            _ => false,
        }
    }

    /// Records one load access outcome during monitoring. `hit` counts both
    /// L1 hits and victim-tag-table hits.
    pub fn record(&mut self, pc: Pc, hit: bool) {
        if !self.monitoring() {
            return;
        }
        let idx = hashed_pc5(pc) as usize % self.entries.len();
        let e = &mut self.entries[idx];
        if e.pc.is_none() {
            e.pc = Some(pc);
        }
        if hit {
            e.hits += 1;
        } else {
            e.misses += 1;
        }
        self.accesses += 1;
    }

    /// Ends a monitoring window: classifies, shifts valid bits, and decides
    /// whether selection has converged. Returns the (possibly unchanged)
    /// phase.
    pub fn end_window(&mut self) -> &LmPhase {
        if !self.monitoring() {
            return &self.phase;
        }
        self.windows_run += 1;

        // Classify this window and shift the 2-bit valid fields.
        let mut cur_set: Vec<u8> = Vec::new();
        let mut prev_set: Vec<u8> = Vec::new();
        for (i, e) in self.entries.iter_mut().enumerate() {
            let active = e.hits + e.misses > 0;
            let high = active && e.hit_ratio() >= self.threshold;
            e.valid_prev = e.valid_cur;
            e.valid_cur = high;
            if high {
                cur_set.push(i as u8);
            }
            if e.valid_prev {
                prev_set.push(i as u8);
            }
            // Counters reset each window; PC and valid bits persist.
            e.hits = 0;
            e.misses = 0;
        }

        if self.windows_run >= 2 {
            if prev_set.is_empty() && cur_set.is_empty() && self.windows_run == 2 {
                // Rule 3: nothing in the first two windows => disabled.
                self.phase = LmPhase::Disabled;
            } else if !cur_set.is_empty() && cur_set == prev_set {
                // Rules 1-2: exact same nonempty set across two consecutive
                // windows => converged.
                self.phase = LmPhase::Selected(cur_set);
            }
            // Rule 4: otherwise keep monitoring.
        }
        &self.phase
    }

    /// Full PCs of the selected loads (for reporting).
    pub fn selected_pcs(&self) -> Vec<Pc> {
        match &self.phase {
            LmPhase::Selected(set) => {
                set.iter().filter_map(|&h| self.entries[h as usize].pc).collect()
            }
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lm() -> LoadMonitor {
        LoadMonitor::new(32, 0.20)
    }

    /// Feed `hits` hits and `misses` misses for `pc` in the current window.
    fn feed(m: &mut LoadMonitor, pc: Pc, hits: u32, misses: u32) {
        for _ in 0..hits {
            m.record(pc, true);
        }
        for _ in 0..misses {
            m.record(pc, false);
        }
    }

    #[test]
    fn converges_after_two_consistent_windows() {
        let mut m = lm();
        let pc = Pc(0x40);
        feed(&mut m, pc, 30, 70); // 30% >= 20%
        assert_eq!(m.end_window(), &LmPhase::Monitoring);
        feed(&mut m, pc, 25, 75);
        let phase = m.end_window().clone();
        assert_eq!(phase, LmPhase::Selected(vec![hashed_pc5(pc)]));
        assert!(m.is_selected(hashed_pc5(pc)));
        assert_eq!(m.windows_run(), 2);
    }

    #[test]
    fn disabled_when_first_two_windows_empty() {
        let mut m = lm();
        let pc = Pc(0x40);
        feed(&mut m, pc, 1, 99); // 1% < 20%
        m.end_window();
        feed(&mut m, pc, 5, 95);
        assert_eq!(m.end_window(), &LmPhase::Disabled);
    }

    #[test]
    fn subset_match_does_not_tag() {
        // Rule 2: {A, B} in window 1, only {A} in window 2 => keep monitoring.
        let mut m = lm();
        let a = Pc(0x40);
        let b = Pc(0x48);
        assert_ne!(hashed_pc5(a), hashed_pc5(b));
        feed(&mut m, a, 50, 50);
        feed(&mut m, b, 50, 50);
        m.end_window();
        feed(&mut m, a, 50, 50);
        feed(&mut m, b, 1, 99);
        assert_eq!(m.end_window(), &LmPhase::Monitoring);
        // Window 3 agrees with window 2's {A}: now converged.
        feed(&mut m, a, 50, 50);
        feed(&mut m, b, 1, 99);
        assert_eq!(m.end_window(), &LmPhase::Selected(vec![hashed_pc5(a)]));
        assert_eq!(m.windows_run(), 3);
    }

    #[test]
    fn monitoring_continues_until_match() {
        // Alternating sets never converge (and never disable, since each
        // window has at least one qualifying load).
        let mut m = lm();
        let a = Pc(0x40);
        let b = Pc(0x48);
        for i in 0..6 {
            let pc = if i % 2 == 0 { a } else { b };
            feed(&mut m, pc, 50, 50);
            assert_eq!(m.end_window(), &LmPhase::Monitoring, "window {i}");
        }
    }

    #[test]
    fn multiple_loads_all_tagged() {
        // Rule 1: no cap on the number of selected loads.
        let mut m = lm();
        let pcs: Vec<Pc> = (0..5).map(|i| Pc(0x100 + i * 8)).collect();
        for _ in 0..2 {
            for &pc in &pcs {
                feed(&mut m, pc, 40, 60);
            }
            m.end_window();
        }
        match m.phase() {
            LmPhase::Selected(set) => assert_eq!(set.len(), 5),
            other => panic!("expected Selected, got {other:?}"),
        }
    }

    #[test]
    fn threshold_is_inclusive_boundary() {
        let mut m = lm();
        let pc = Pc(0x8);
        // Exactly 20%.
        for _ in 0..2 {
            feed(&mut m, pc, 20, 80);
            m.end_window();
        }
        assert!(m.is_selected(hashed_pc5(pc)));
    }

    #[test]
    fn records_ignored_after_convergence() {
        let mut m = lm();
        let pc = Pc(0x40);
        for _ in 0..2 {
            feed(&mut m, pc, 50, 50);
            m.end_window();
        }
        let before = m.accesses();
        m.record(pc, true);
        assert_eq!(m.accesses(), before, "post-selection records must be ignored");
    }

    #[test]
    fn selected_pcs_reports_full_pcs() {
        let mut m = lm();
        let pc = Pc(0x1234);
        for _ in 0..2 {
            feed(&mut m, pc, 50, 50);
            m.end_window();
        }
        assert_eq!(m.selected_pcs(), vec![pc]);
    }

    #[test]
    fn inactive_entries_never_qualify() {
        let mut m = lm();
        // Only one load is active; entry 0 (untouched) must not qualify.
        let pc = Pc(0x40);
        for _ in 0..2 {
            feed(&mut m, pc, 50, 50);
            m.end_window();
        }
        match m.phase() {
            LmPhase::Selected(set) => assert_eq!(set.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
    }
}
