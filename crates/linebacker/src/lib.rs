//! # linebacker — victim caching in idle GPU register files
//!
//! Reproduction of the core mechanism of *Linebacker: Preserving Victim
//! Cache Lines in Idle Register Files of GPUs* (ISCA 2019). Linebacker
//! co-designs three techniques on top of a GTO-scheduled GPU:
//!
//! 1. **CTA throttling** driven by windowed IPC variation (±10 % bounds),
//!    which frees register-file space while curbing cache contention;
//! 2. **register backup/restore** of throttled CTAs to off-chip memory, so
//!    their register-file space becomes *dynamically unused*;
//! 3. **selective victim caching**: a 32-entry Load Monitor classifies
//!    static loads by hit ratio over 50 k-cycle windows, and only victims of
//!    high-locality loads are preserved — in idle warp registers indexed by
//!    a Victim Tag Table mirroring the L1's 48 sets.
//!
//! The entry point is [`LinebackerPolicy`], an implementation of
//! [`gpu_sim::policy::SmPolicy`]; attach it to a simulation with
//! [`linebacker_factory`]:
//!
//! ```
//! use gpu_sim::config::GpuConfig;
//! use gpu_sim::gpu::run_kernel;
//! use gpu_sim::kernel::KernelBuilder;
//! use gpu_sim::pattern::AccessPattern;
//! use linebacker::{linebacker_factory, LbConfig};
//!
//! let kernel = KernelBuilder::new("demo")
//!     .grid(8, 4)
//!     .regs_per_thread(32)
//!     .load_then_use(AccessPattern::reuse_working_set(64 * 1024, true), 2)
//!     .iterations(200)
//!     .build()?;
//! let cfg = GpuConfig::default().with_sms(2).with_windows(5_000, 60_000);
//! let stats = run_kernel(cfg, kernel, &linebacker_factory(LbConfig::default()));
//! println!("IPC = {:.3}, reg hits = {}", stats.ipc(), stats.reg_hits);
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod backup;
pub mod config;
pub mod ctl;
pub mod hpc;
pub mod load_monitor;
pub mod overhead;
pub mod policy;
pub mod vtt;

pub use config::{LbConfig, LbMode};
pub use ctl::{CtaManager, IpcMonitor, ThrottleDecision};
pub use load_monitor::{LmPhase, LoadMonitor};
pub use overhead::StorageOverhead;
pub use policy::{
    linebacker_factory, selective_victim_caching_factory, victim_caching_factory, LinebackerPolicy,
};
pub use vtt::{Vtt, VttHit};
