//! Storage-overhead model reproducing the paper's §4.2 accounting
//! (total ≈ 5.88 KB per SM, ~0.9 % of an SM's area).

/// Per-structure storage overheads in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageOverhead {
    /// Per-line 5-bit HPC fields over the whole L1.
    pub hpc_fields_bytes: u64,
    /// Load Monitor: 32 entries x (2-bit valid + three 4-byte registers).
    pub lm_bytes: u64,
    /// IPC monitor: three 32-bit registers.
    pub ipc_monitor_bytes: u64,
    /// CTA manager common info: two 11-bit + one 32-bit register.
    pub cta_common_bytes: u64,
    /// Per-CTA Info: 32 entries x (2 x 1-bit + 11-bit + 32-bit).
    pub per_cta_bytes: u64,
    /// Victim tag table: entries x (1 valid + 18 tag + 5 meta bits).
    pub vtt_bytes: u64,
    /// 6-entry transfer buffer: (4-byte address + 128-byte line) each.
    pub buffer_bytes: u64,
}

impl StorageOverhead {
    /// Computes the overhead for a given L1 size and VTT entry count
    /// (defaults: 48 KB L1, 1536 VTT entries).
    pub fn compute(l1_bytes: u64, vtt_entries: u64) -> Self {
        let l1_lines = l1_bytes / 128;
        // 5 bits per line, packed.
        let hpc_fields_bytes = l1_lines * 5 / 8;
        // LM: 32 entries x (2 bits + 3 x 4 B). The paper rounds to 392 B
        // (12.25 B/entry).
        let lm_bytes = 32 * (2 + 3 * 4 * 8) / 8;
        let ipc_monitor_bytes = 3 * 4;
        // Common info: 11 + 11 + 32 bits.
        let cta_common_bytes = (11u64 + 11 + 32).div_ceil(8);
        // Per-CTA: 32 x (1 + 1 + 11 + 32 bits).
        let per_cta_bytes = 32 * (1 + 1 + 11 + 32) / 8;
        // VTT: 24 bits per entry.
        let vtt_bytes = vtt_entries * 24 / 8;
        let buffer_bytes = 6 * (4 + 128);
        StorageOverhead {
            hpc_fields_bytes,
            lm_bytes,
            ipc_monitor_bytes,
            cta_common_bytes,
            per_cta_bytes,
            vtt_bytes,
            buffer_bytes,
        }
    }

    /// Total bytes.
    pub fn total_bytes(&self) -> u64 {
        self.hpc_fields_bytes
            + self.lm_bytes
            + self.ipc_monitor_bytes
            + self.cta_common_bytes
            + self.per_cta_bytes
            + self.vtt_bytes
            + self.buffer_bytes
    }

    /// Total in KB.
    pub fn total_kb(&self) -> f64 {
        self.total_bytes() as f64 / 1024.0
    }
}

impl Default for StorageOverhead {
    fn default() -> Self {
        Self::compute(48 * 1024, 1536)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_section_4_2() {
        let o = StorageOverhead::default();
        // Paper: HPC fields 240 B for 48 KB L1.
        assert_eq!(o.hpc_fields_bytes, 240);
        // Paper: LM uses 392 B.
        assert_eq!(o.lm_bytes, 392);
        // Paper: VTT 4608 B for 1536 entries.
        assert_eq!(o.vtt_bytes, 4608);
        // Paper: buffer (4 + 128) x 6 = 792 B.
        assert_eq!(o.buffer_bytes, 792);
        // Paper total: ~5.88 KB.
        let kb = o.total_kb();
        assert!((5.7..6.1).contains(&kb), "total {kb} KB should be ~5.88 KB");
    }

    #[test]
    fn scales_with_l1_size() {
        let small = StorageOverhead::compute(16 * 1024, 1536);
        let large = StorageOverhead::compute(128 * 1024, 1536);
        assert!(small.hpc_fields_bytes < large.hpc_fields_bytes);
        assert_eq!(small.vtt_bytes, large.vtt_bytes);
    }

    #[test]
    fn total_is_sum_of_parts() {
        let o = StorageOverhead::default();
        let sum = o.hpc_fields_bytes
            + o.lm_bytes
            + o.ipc_monitor_bytes
            + o.cta_common_bytes
            + o.per_cta_bytes
            + o.vtt_bytes
            + o.buffer_bytes;
        assert_eq!(o.total_bytes(), sum);
    }
}
