//! Linebacker microarchitectural parameters (the paper's Table 3).

/// Which of Linebacker's techniques are enabled — used for the paper's
/// ablation (Figure 11) and combination (Figure 15) studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LbMode {
    /// Filter victims through per-load locality monitoring (Selective
    /// Victim Caching). When false, *every* evicted line is preserved.
    pub selective: bool,
    /// Enable IPC-driven CTA throttling with register backup/restore (which
    /// creates dynamically-unused register space for victim caching).
    pub throttling: bool,
}

impl LbMode {
    /// The full Linebacker design: selection + throttling.
    pub fn full() -> Self {
        LbMode { selective: true, throttling: true }
    }

    /// "Victim Caching" of Figure 11: preserve all victims, no monitoring,
    /// no throttling (statically-unused registers only).
    pub fn victim_caching_only() -> Self {
        LbMode { selective: false, throttling: false }
    }

    /// "Selective Victim Caching" of Figure 11: monitoring-based selection,
    /// no throttling (statically-unused registers only).
    pub fn selective_victim_caching() -> Self {
        LbMode { selective: true, throttling: false }
    }
}

/// Full Linebacker configuration. Defaults reproduce Table 3:
///
/// | parameter | value |
/// |---|---|
/// | IPC & per-load locality monitoring period | 50 000 cycles |
/// | cache-hit threshold for high-locality loads | 20 % |
/// | IPC variation bounds | upper +10 %, lower −10 % |
/// | VTT | 4-way set-associative partitions, up to 8 |
/// | VP access latency | 3 cycles |
/// | access energies | CTA manager 1.94 pJ, HPC 0.09 pJ, LM 0.32 pJ, VTT 2.05 pJ |
///
/// # Examples
///
/// ```
/// use linebacker::config::LbConfig;
/// let cfg = LbConfig::default();
/// assert_eq!(cfg.vp_assoc, 4);
/// assert_eq!(cfg.max_vps(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LbConfig {
    /// Enabled techniques.
    pub mode: LbMode,
    /// Hit-ratio threshold above which a load is classified high-locality.
    pub hit_threshold: f64,
    /// IPC improvement above which another CTA is throttled.
    pub ipc_upper: f64,
    /// IPC change below which a throttled CTA is re-activated.
    pub ipc_lower: f64,
    /// Sets per VTT partition (mirrors the 48-set L1).
    pub vtt_sets: u32,
    /// Ways per VTT partition (the Figure 10 sweep parameter; 4 default).
    pub vp_assoc: u32,
    /// Total victim tag entries across all partitions (48 sets x 32 ways).
    pub total_vtt_ways: u32,
    /// Latency to search one VTT partition, in cycles.
    pub vp_access_latency: u32,
    /// First register number usable as victim storage (the paper's Offset;
    /// RN 512..=2047 may hold victim lines).
    pub rn_offset: u32,
    /// Load Monitor table entries (2^5 hashed-PC space).
    pub lm_entries: u32,
    /// Energy per CTA-manager access, pJ.
    pub cta_mgr_pj: f64,
    /// Energy per per-line HPC field access, pJ.
    pub hpc_pj: f64,
    /// Energy per Load-Monitor access, pJ.
    pub lm_pj: f64,
    /// Energy per VTT access, pJ.
    pub vtt_pj: f64,
}

impl Default for LbConfig {
    fn default() -> Self {
        LbConfig {
            mode: LbMode::full(),
            hit_threshold: 0.20,
            ipc_upper: 0.10,
            ipc_lower: -0.10,
            vtt_sets: 48,
            vp_assoc: 4,
            total_vtt_ways: 32,
            vp_access_latency: 3,
            rn_offset: 511,
            lm_entries: 32,
            cta_mgr_pj: 1.94,
            hpc_pj: 0.09,
            lm_pj: 0.32,
            vtt_pj: 2.05,
        }
    }
}

impl LbConfig {
    /// Default configuration with a different mode.
    pub fn with_mode(mode: LbMode) -> Self {
        LbConfig { mode, ..Default::default() }
    }

    /// Default configuration with a different VP associativity (Figure 10).
    pub fn with_vp_assoc(assoc: u32) -> Self {
        assert!((1..=32).contains(&assoc), "VP associativity must be 1..=32");
        LbConfig { vp_assoc: assoc, ..Default::default() }
    }

    /// Maximum number of partitions: 32 total ways / ways per partition.
    pub fn max_vps(&self) -> u32 {
        self.total_vtt_ways / self.vp_assoc
    }

    /// Victim-line entries per partition (48 sets x ways).
    pub fn entries_per_vp(&self) -> u32 {
        self.vtt_sets * self.vp_assoc
    }

    /// Registers (= victim lines) needed to activate one partition.
    /// With 4-way VPs this is 192 registers = 24 KB, the paper's allocation
    /// granularity.
    pub fn regs_per_vp(&self) -> u32 {
        self.entries_per_vp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_defaults() {
        let c = LbConfig::default();
        assert_eq!(c.hit_threshold, 0.20);
        assert_eq!(c.ipc_upper, 0.10);
        assert_eq!(c.ipc_lower, -0.10);
        assert_eq!(c.vp_assoc, 4);
        assert_eq!(c.max_vps(), 8);
        assert_eq!(c.vp_access_latency, 3);
        assert_eq!(c.cta_mgr_pj, 1.94);
        assert_eq!(c.hpc_pj, 0.09);
        assert_eq!(c.lm_pj, 0.32);
        assert_eq!(c.vtt_pj, 2.05);
        assert_eq!(c.rn_offset, 511);
        assert_eq!(c.lm_entries, 32);
    }

    #[test]
    fn vp_geometry() {
        let c = LbConfig::default();
        // 192 victim lines of 128 B per partition = 24 KB granularity.
        assert_eq!(c.entries_per_vp(), 192);
        assert_eq!(c.regs_per_vp() as u64 * 128, 24 * 1024);
    }

    #[test]
    fn assoc_sweep_changes_partition_count() {
        assert_eq!(LbConfig::with_vp_assoc(1).max_vps(), 32);
        assert_eq!(LbConfig::with_vp_assoc(4).max_vps(), 8);
        assert_eq!(LbConfig::with_vp_assoc(16).max_vps(), 2);
        assert_eq!(LbConfig::with_vp_assoc(32).max_vps(), 1);
    }

    #[test]
    #[should_panic(expected = "1..=32")]
    fn invalid_assoc_panics() {
        let _ = LbConfig::with_vp_assoc(0);
    }

    #[test]
    fn modes() {
        assert!(LbMode::full().selective && LbMode::full().throttling);
        let vc = LbMode::victim_caching_only();
        assert!(!vc.selective && !vc.throttling);
        let svc = LbMode::selective_victim_caching();
        assert!(svc.selective && !svc.throttling);
    }
}
