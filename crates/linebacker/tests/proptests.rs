//! Randomized property tests for Linebacker's structures (seeded and
//! deterministic, via the in-tree `testkit` crate).

use testkit::check;

use gpu_sim::types::{hashed_pc5, CtaId, LineAddr, Pc, RegNum};
use linebacker::{CtaManager, LbConfig, LoadMonitor, Vtt};

/// LM selection requires two consecutive qualifying windows with the
/// same set — a single window never selects.
#[test]
fn lm_never_selects_after_one_window() {
    check("lm_never_selects_after_one_window", |r| {
        let hits = r.range_u32(1, 100);
        let misses = r.range_u32(0, 100);
        let mut lm = LoadMonitor::new(32, 0.2);
        for _ in 0..hits {
            lm.record(Pc(0x40), true);
        }
        for _ in 0..misses {
            lm.record(Pc(0x40), false);
        }
        lm.end_window();
        assert!(lm.monitoring(), "one window must never conclude monitoring");
    });
}

/// Two identical windows always conclude: either Selected (ratio >=
/// threshold) or Disabled (below).
#[test]
fn lm_two_identical_windows_conclude() {
    check("lm_two_identical_windows_conclude", |r| {
        let hits = r.range_u32(0, 50);
        let misses = r.range_u32(1, 50);
        let mut lm = LoadMonitor::new(32, 0.2);
        for _ in 0..2 {
            for _ in 0..hits {
                lm.record(Pc(0x40), true);
            }
            for _ in 0..misses {
                lm.record(Pc(0x40), false);
            }
            lm.end_window();
        }
        let ratio = hits as f64 / (hits + misses) as f64;
        if ratio >= 0.2 {
            assert!(lm.is_selected(hashed_pc5(Pc(0x40))));
        } else {
            assert!(!lm.monitoring(), "below-threshold loads must disable LB");
            assert!(!lm.is_selected(hashed_pc5(Pc(0x40))));
        }
    });
}

/// VTT occupancy never exceeds active capacity, and store-invalidated
/// lines never hit.
#[test]
fn vtt_occupancy_bounded_and_stores_invalidate() {
    check("vtt_occupancy_bounded_and_stores_invalidate", |r| {
        let ops = r.vec(1, 300, |r| (r.range_u64(0, 500), r.bool()));
        let min_free = r.range_u32(511, 2048);
        let cfg = LbConfig::default();
        let mut v = Vtt::new(&cfg);
        v.set_tag_only(false);
        v.refresh_partitions(min_free);
        let cap = (v.active_vps() * cfg.entries_per_vp()) as usize;
        for &(line, is_store) in &ops {
            let line = LineAddr(line);
            if is_store {
                v.invalidate_store(line);
                assert!(v.lookup(line).is_none(), "store-invalidated line hit");
            } else {
                v.insert(line);
            }
            assert!(v.occupancy() <= cap, "occupancy {} > capacity {cap}", v.occupancy());
        }
    });
}

/// Every RN handed out by the VTT lies inside an *active* partition's
/// register range (never inside live-CTA registers).
#[test]
fn vtt_rns_respect_free_boundary() {
    check("vtt_rns_respect_free_boundary", |r| {
        let lines = r.vec(1, 200, |r| r.range_u64(0, 2000));
        let min_free = r.range_u32(511, 2048);
        let mut v = Vtt::new(&LbConfig::default());
        v.set_tag_only(false);
        v.refresh_partitions(min_free);
        for &l in &lines {
            if let Some(rn) = v.insert(LineAddr(l)) {
                assert!(
                    rn.0 >= min_free,
                    "victim register {} below free boundary {min_free}",
                    rn.0
                );
                assert!(rn.0 < 2048);
            }
        }
    });
}

/// CTA manager: BP always advances by #reg x 128 per backup and rewinds
/// on restore; LRN equals the max over active CTAs.
#[test]
fn cta_manager_bp_and_lrn() {
    check("cta_manager_bp_and_lrn", |r| {
        let regs_per_cta = r.range_u32(1, 256);
        let n = r.range_u32(1, 8);
        let bp0 = 0x1000u64;
        let mut m = CtaManager::new(8, regs_per_cta, bp0);
        for i in 0..n {
            m.on_launch(CtaId(i), RegNum(i * regs_per_cta));
        }
        assert_eq!(m.common.lrn, n * regs_per_cta - 1);
        // Back up the highest CTA.
        let addr = m.begin_backup(CtaId(n - 1));
        assert_eq!(addr, bp0);
        assert_eq!(m.common.bp, bp0 + regs_per_cta as u64 * 128);
        m.complete_backup(CtaId(n - 1));
        let expect_lrn = if n >= 2 { (n - 1) * regs_per_cta - 1 } else { 0 };
        assert_eq!(m.common.lrn, expect_lrn);
        // Restore rewinds BP exactly.
        let raddr = m.begin_restore(CtaId(n - 1));
        assert_eq!(raddr, bp0);
        assert_eq!(m.common.bp, bp0);
    });
}

/// The hashed PC is stable and stride-8 PCs (the kernel builder's
/// encoding) do not collide within the first 32 instructions.
#[test]
fn hpc_stride8_no_collisions() {
    check("hpc_stride8_no_collisions", |r| {
        let base = r.range_u32(0, 1024) * 256; // arbitrary aligned kernel start
        let mut seen = std::collections::HashSet::new();
        for i in 0..32u32 {
            seen.insert(hashed_pc5(Pc(base + i * 8)));
        }
        assert_eq!(seen.len(), 32);
    });
}
