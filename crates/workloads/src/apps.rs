//! The 20 synthetic benchmark applications (the paper's Table 2).
//!
//! Each model reproduces the *memory-visible* behaviour of the real
//! benchmark: the per-load reused working sets, streaming footprints,
//! register pressure, and the resulting cache-sensitivity class. The real
//! CUDA sources are not executed; see DESIGN.md §1 for the substitution
//! rationale.

use gpu_sim::pattern::AccessPattern;

use crate::spec::{AppLoad, AppSpec, Sensitivity};

const KB: u64 = 1024;

fn reuse(ws_kb: u64, gap: u32) -> AppLoad {
    AppLoad { pattern: AccessPattern::reuse_working_set(ws_kb * KB, true), use_gap: gap }
}

/// Per-warp private reused working set (`ws_bytes` *per warp*). This is the
/// dominant pattern of the paper's cache-sensitive apps: Figure 2 notes that
/// 85 % of the reused working set is private to one load, and warp
/// throttling helps precisely because fewer active warps shrink the live
/// footprint.
fn reuse_private(ws_bytes: u64, gap: u32) -> AppLoad {
    AppLoad { pattern: AccessPattern::reuse_working_set(ws_bytes, false), use_gap: gap }
}

fn random(ws_kb: u64, gap: u32) -> AppLoad {
    AppLoad {
        pattern: AccessPattern::RandomInSet { ws_bytes: ws_kb * KB, shared: true },
        use_gap: gap,
    }
}

fn stream(bytes_per_access: u64, gap: u32) -> AppLoad {
    AppLoad { pattern: AccessPattern::streaming(bytes_per_access), use_gap: gap }
}

fn tiled(tile_kb: u64, reuse_count: u32, gap: u32) -> AppLoad {
    AppLoad {
        pattern: AccessPattern::Tiled {
            tile_bytes: tile_kb * KB,
            reuse: reuse_count,
            shared: true,
        },
        use_gap: gap,
    }
}

fn divergent(ws_kb: u64, lines: u32, gap: u32) -> AppLoad {
    AppLoad {
        pattern: AccessPattern::Divergent { ws_bytes: ws_kb * KB, lines_per_access: lines },
        use_gap: gap,
    }
}

/// All 20 applications in the paper's Table 2 order (cache-sensitive group
/// first).
pub fn all_apps() -> Vec<AppSpec> {
    vec![
        // ---------------- cache-sensitive ----------------
        AppSpec {
            abbrev: "S2",
            description: "Symmetric rank-2k operations (Polybench SYR2K)",
            sensitivity: Sensitivity::CacheSensitive,
            warps_per_cta: 8,
            regs_per_thread: 24,
            loads: vec![reuse_private(2048, 2), reuse(16, 2)],
            alu_per_iter: 3,
            has_store: true,
        },
        AppSpec {
            abbrev: "GE",
            description: "Scalar, vector and matrix multiplication (Polybench GESUMMV)",
            sensitivity: Sensitivity::CacheSensitive,
            warps_per_cta: 8,
            regs_per_thread: 20,
            loads: vec![reuse_private(2048, 3), reuse(16, 1)],
            alu_per_iter: 2,
            has_store: false,
        },
        AppSpec {
            abbrev: "BI",
            description: "BiCGStab linear solver (Polybench BICG)",
            sensitivity: Sensitivity::CacheSensitive,
            warps_per_cta: 8,
            regs_per_thread: 16,
            loads: vec![reuse_private(1024, 2), stream(128, 1)],
            alu_per_iter: 2,
            has_store: true,
        },
        AppSpec {
            abbrev: "KM",
            description: "KMeans clustering (Rodinia)",
            sensitivity: Sensitivity::CacheSensitive,
            warps_per_cta: 8,
            regs_per_thread: 28,
            loads: vec![random(48, 2), reuse_private(1024, 1), stream(128, 1)],
            alu_per_iter: 3,
            has_store: true,
        },
        AppSpec {
            abbrev: "AT",
            description: "Matrix transpose-vector multiplication (Polybench ATAX)",
            sensitivity: Sensitivity::CacheSensitive,
            warps_per_cta: 8,
            regs_per_thread: 20,
            loads: vec![divergent(32, 4, 3), reuse_private(2048, 1)],
            alu_per_iter: 2,
            has_store: false,
        },
        AppSpec {
            abbrev: "BC",
            description: "Breadth-first search (CUDA SDK)",
            sensitivity: Sensitivity::CacheSensitive,
            warps_per_cta: 8,
            regs_per_thread: 16,
            loads: vec![random(48, 2), reuse_private(1024, 1), stream(128, 1)],
            alu_per_iter: 1,
            has_store: true,
        },
        AppSpec {
            abbrev: "S1",
            description: "Symmetric rank-1k operations (Polybench SYRK)",
            sensitivity: Sensitivity::CacheSensitive,
            warps_per_cta: 8,
            regs_per_thread: 22,
            loads: vec![reuse_private(2048, 2), reuse(16, 2)],
            alu_per_iter: 3,
            has_store: true,
        },
        AppSpec {
            abbrev: "MV",
            description: "Matrix-vector product transpose (Polybench MVT)",
            sensitivity: Sensitivity::CacheSensitive,
            warps_per_cta: 8,
            regs_per_thread: 16,
            loads: vec![reuse_private(2048, 2), divergent(16, 2, 2)],
            alu_per_iter: 2,
            has_store: false,
        },
        AppSpec {
            abbrev: "CF",
            description: "CFD Euler solver (Rodinia)",
            sensitivity: Sensitivity::CacheSensitive,
            warps_per_cta: 8,
            regs_per_thread: 24,
            loads: vec![reuse_private(1792, 2), reuse(24, 2)],
            alu_per_iter: 4,
            has_store: true,
        },
        AppSpec {
            abbrev: "PF",
            description: "Particle filter, float variant (Rodinia)",
            sensitivity: Sensitivity::CacheSensitive,
            warps_per_cta: 8,
            regs_per_thread: 20,
            loads: vec![reuse_private(1792, 2), random(16, 1)],
            alu_per_iter: 3,
            has_store: true,
        },
        // ---------------- cache-insensitive ----------------
        AppSpec {
            abbrev: "BG",
            description: "Breadth-first search (GPGPU-Sim suite)",
            sensitivity: Sensitivity::CacheInsensitive,
            warps_per_cta: 4,
            regs_per_thread: 12,
            loads: vec![random(16, 1), stream(128, 1)],
            alu_per_iter: 1,
            has_store: true,
        },
        AppSpec {
            abbrev: "LI",
            description: "LIBOR Monte Carlo (GPGPU-Sim suite)",
            sensitivity: Sensitivity::CacheInsensitive,
            warps_per_cta: 8,
            regs_per_thread: 32,
            loads: vec![stream(256, 2), reuse(8, 1)],
            alu_per_iter: 6,
            has_store: false,
        },
        AppSpec {
            abbrev: "SR2",
            description: "SRAD v2 speckle-reducing diffusion (Rodinia)",
            sensitivity: Sensitivity::CacheInsensitive,
            warps_per_cta: 8,
            regs_per_thread: 24,
            loads: vec![stream(256, 2), reuse(12, 1)],
            alu_per_iter: 4,
            has_store: true,
        },
        AppSpec {
            abbrev: "SP",
            description: "Sparse matrix-vector multiplication (Parboil SPMV)",
            sensitivity: Sensitivity::CacheInsensitive,
            warps_per_cta: 4,
            regs_per_thread: 16,
            loads: vec![divergent(24, 4, 2), stream(128, 1)],
            alu_per_iter: 1,
            has_store: true,
        },
        AppSpec {
            abbrev: "BR",
            description: "Breadth-first search (Rodinia)",
            sensitivity: Sensitivity::CacheInsensitive,
            warps_per_cta: 6,
            regs_per_thread: 12,
            loads: vec![random(24, 1), stream(128, 1)],
            alu_per_iter: 1,
            has_store: true,
        },
        AppSpec {
            abbrev: "FD",
            description: "2D finite-difference time-domain stencil (Polybench FDTD-2D)",
            sensitivity: Sensitivity::CacheInsensitive,
            warps_per_cta: 8,
            regs_per_thread: 20,
            loads: vec![stream(128, 1), stream(128, 1), stream(128, 1)],
            alu_per_iter: 3,
            has_store: true,
        },
        AppSpec {
            abbrev: "GA",
            description: "Gaussian elimination (Rodinia)",
            sensitivity: Sensitivity::CacheInsensitive,
            warps_per_cta: 2,
            regs_per_thread: 16,
            loads: vec![reuse(16, 1)],
            alu_per_iter: 2,
            has_store: true,
        },
        AppSpec {
            abbrev: "2D",
            description: "2D convolution (Polybench 2DCONV)",
            sensitivity: Sensitivity::CacheInsensitive,
            warps_per_cta: 8,
            regs_per_thread: 16,
            loads: vec![stream(256, 2), tiled(8, 4, 1)],
            alu_per_iter: 2,
            has_store: true,
        },
        AppSpec {
            abbrev: "SR1",
            description: "SRAD v1 speckle-reducing diffusion (Rodinia)",
            sensitivity: Sensitivity::CacheInsensitive,
            warps_per_cta: 6,
            regs_per_thread: 24,
            loads: vec![reuse(20, 2), stream(128, 1)],
            alu_per_iter: 3,
            has_store: true,
        },
        AppSpec {
            abbrev: "HS",
            description: "HotSpot thermal simulation (Rodinia)",
            sensitivity: Sensitivity::CacheInsensitive,
            warps_per_cta: 8,
            regs_per_thread: 28,
            loads: vec![tiled(16, 6, 2), stream(256, 1)],
            alu_per_iter: 4,
            has_store: true,
        },
    ]
}

/// Looks an application up by its Table 2 abbreviation.
pub fn app(abbrev: &str) -> Option<AppSpec> {
    all_apps().into_iter().find(|a| a.abbrev == abbrev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::config::GpuConfig;

    #[test]
    fn twenty_apps_ten_per_class() {
        let apps = all_apps();
        assert_eq!(apps.len(), 20);
        let sensitive =
            apps.iter().filter(|a| a.sensitivity == Sensitivity::CacheSensitive).count();
        assert_eq!(sensitive, 10);
    }

    #[test]
    fn abbreviations_unique_and_match_paper() {
        let apps = all_apps();
        let expect = [
            "S2", "GE", "BI", "KM", "AT", "BC", "S1", "MV", "CF", "PF", "BG", "LI", "SR2", "SP",
            "BR", "FD", "GA", "2D", "SR1", "HS",
        ];
        let got: Vec<&str> = apps.iter().map(|a| a.abbrev).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn all_kernels_build() {
        for a in all_apps() {
            let k = a.kernel_with(1, 10);
            assert!(k.validate().is_ok(), "{} kernel invalid", a.abbrev);
        }
    }

    #[test]
    fn lookup_by_abbrev() {
        assert!(app("S2").is_some());
        assert!(app("HS").is_some());
        assert!(app("zz").is_none());
    }

    #[test]
    fn sensitive_apps_have_big_working_sets() {
        // Figure 2's claim: the top loads of cache-sensitive apps exceed the
        // 48 KB L1. Sensitive apps resident 8 CTAs x 8 warps = 64 warps.
        for a in all_apps() {
            if a.sensitivity == Sensitivity::CacheSensitive {
                let warps = a.resident_ctas(&GpuConfig::default()) as u64 * a.warps_per_cta as u64;
                assert!(
                    a.nominal_ws_bytes(warps) > 48 * 1024,
                    "{} working set {} too small for its class",
                    a.abbrev,
                    a.nominal_ws_bytes(warps)
                );
            }
        }
    }

    #[test]
    fn insensitive_apps_fit_or_stream() {
        for a in all_apps() {
            if a.sensitivity == Sensitivity::CacheInsensitive {
                let fits = a.nominal_ws_bytes(48) <= 48 * 1024;
                assert!(fits || a.has_streaming_load(), "{} should fit in L1 or stream", a.abbrev);
            }
        }
    }

    #[test]
    fn streaming_apps_match_figure3() {
        // BI, LI, SR2, 2D, HS access streaming data beyond the cache size.
        for abbrev in ["BI", "LI", "SR2", "2D", "HS"] {
            assert!(app(abbrev).unwrap().has_streaming_load(), "{abbrev}");
        }
    }

    #[test]
    fn sur_spread_matches_figure4_range() {
        // Figure 4: SUR spans roughly 4-144 KB across apps. Ours must spread
        // over a comparable range (not all zero, not all maximal).
        let cfg = GpuConfig::default();
        let surs: Vec<u64> = all_apps().iter().map(|a| a.static_unused_bytes(&cfg)).collect();
        let max = *surs.iter().max().unwrap();
        let min = *surs.iter().min().unwrap();
        assert!(max >= 64 * 1024, "largest SUR {} too small", max);
        assert!(min <= 16 * 1024, "smallest SUR {} too large", min);
        let avg = surs.iter().sum::<u64>() / surs.len() as u64;
        assert!(
            (32 * 1024..=128 * 1024).contains(&avg),
            "average SUR {avg} outside the paper's ballpark"
        );
    }

    #[test]
    fn occupancy_within_hw_limits() {
        let cfg = GpuConfig::default();
        for a in all_apps() {
            let r = a.resident_ctas(&cfg);
            assert!((1..=32).contains(&r), "{}: resident {r}", a.abbrev);
            assert!(r * a.warps_per_cta <= 64, "{}: too many warps", a.abbrev);
        }
    }
}
