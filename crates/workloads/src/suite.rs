//! Suite utilities: classification runs and cross-app sweeps.

use gpu_sim::config::GpuConfig;
use gpu_sim::gpu::run_kernel;
use gpu_sim::policy::baseline_factory;
use gpu_sim::stats::SimStats;

use crate::spec::{AppSpec, Sensitivity};

/// Result of the Table 2 classification experiment for one app.
#[derive(Debug, Clone)]
pub struct Classification {
    /// The application.
    pub abbrev: &'static str,
    /// IPC with the baseline 48 KB L1.
    pub ipc_small: f64,
    /// IPC with the enlarged 192 KB L1.
    pub ipc_large: f64,
    /// Measured class (>30 % speedup => sensitive).
    pub measured: Sensitivity,
    /// Expected class from Table 2.
    pub expected: Sensitivity,
}

impl Classification {
    /// Speedup of the large-cache configuration.
    pub fn speedup(&self) -> f64 {
        if self.ipc_small <= 0.0 {
            1.0
        } else {
            self.ipc_large / self.ipc_small
        }
    }
}

/// Runs the paper's sensitivity test for one app: baseline L1 vs 192 KB,
/// classifying at the 30 % speedup threshold.
pub fn classify(cfg: &GpuConfig, app: &AppSpec) -> Classification {
    let kernel = app.kernel(cfg.n_sms);
    let small = run_kernel(cfg.clone(), kernel.clone(), &baseline_factory());
    let large_cfg = cfg.clone().with_l1_size(192 * 1024);
    let large = run_kernel(large_cfg, kernel, &baseline_factory());
    let speedup = if small.ipc() > 0.0 { large.ipc() / small.ipc() } else { 1.0 };
    Classification {
        abbrev: app.abbrev,
        ipc_small: small.ipc(),
        ipc_large: large.ipc(),
        measured: if speedup > 1.30 {
            Sensitivity::CacheSensitive
        } else {
            Sensitivity::CacheInsensitive
        },
        expected: app.sensitivity,
    }
}

/// Runs an app on a configuration with the baseline policy.
pub fn run_baseline(cfg: &GpuConfig, app: &AppSpec) -> SimStats {
    run_kernel(cfg.clone(), app.kernel(cfg.n_sms), &baseline_factory())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::app;

    fn fast_cfg() -> GpuConfig {
        GpuConfig::default().with_sms(1).with_windows(2_000, 24_000)
    }

    #[test]
    fn representative_sensitive_app_classifies_correctly() {
        // GE: 96 KB shared working set thrashes a 48 KB L1, fits in 192 KB.
        let c = classify(&fast_cfg(), &app("GE").unwrap());
        assert_eq!(
            c.measured,
            Sensitivity::CacheSensitive,
            "GE speedup {:.2} should exceed 1.30",
            c.speedup()
        );
    }

    #[test]
    fn representative_insensitive_app_classifies_correctly() {
        // GA: 16 KB working set fits the baseline cache already.
        let c = classify(&fast_cfg(), &app("GA").unwrap());
        assert_eq!(
            c.measured,
            Sensitivity::CacheInsensitive,
            "GA speedup {:.2} should stay under 1.30",
            c.speedup()
        );
    }

    #[test]
    fn streaming_app_is_insensitive() {
        let c = classify(&fast_cfg(), &app("FD").unwrap());
        assert_eq!(c.measured, Sensitivity::CacheInsensitive);
    }
}
