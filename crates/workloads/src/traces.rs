//! Registry of loaded workload traces.
//!
//! The bench harness identifies workloads by `&'static str` app keys
//! (`RunKey::app`). Trace-driven workloads arrive at runtime — decoded from
//! `.lbw1` files — so this registry bridges the two worlds: registering a
//! trace leaks a `"trace:<name>"` key string (a handful per process, for
//! the lifetime of the process, exactly like the static app abbreviations)
//! and the runner resolves such keys here before falling back to the
//! synthetic [`crate::app`] table.
//!
//! The registry is process-global and thread-safe; run-engine workers only
//! read it (cheap `Arc` clones of the shared, immutable kernels).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use gpu_sim::replay::ReplayKernel;

fn registry() -> &'static Mutex<HashMap<&'static str, Arc<ReplayKernel>>> {
    static REG: OnceLock<Mutex<HashMap<&'static str, Arc<ReplayKernel>>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Registers `rep` under the key `trace:<name>` and returns the key,
/// suitable as a bench-harness app key. Re-registering a name replaces the
/// kernel but reuses the existing leaked key.
pub fn register(name: &str, rep: Arc<ReplayKernel>) -> &'static str {
    let mut reg = registry().lock().unwrap();
    let full = format!("trace:{name}");
    if let Some(&existing) = reg.keys().find(|k| **k == full) {
        reg.insert(existing, rep);
        return existing;
    }
    let key: &'static str = Box::leak(full.into_boxed_str());
    reg.insert(key, rep);
    key
}

/// Looks up a registered trace by its full key (`trace:<name>`).
pub fn get(key: &str) -> Option<Arc<ReplayKernel>> {
    registry().lock().unwrap().get(key).cloned()
}

/// All registered trace keys, sorted (stable experiment ordering).
pub fn names() -> Vec<&'static str> {
    let mut v: Vec<&'static str> = registry().lock().unwrap().keys().copied().collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::kernel::KernelBuilder;
    use gpu_sim::pattern::AccessPattern;
    use gpu_sim::replay::{TraceOp, WarpStream};
    use gpu_sim::types::LineAddr;

    fn tiny() -> Arc<ReplayKernel> {
        let stub = KernelBuilder::new("t")
            .grid(1, 1)
            .load_then_use(AccessPattern::streaming(128), 0)
            .build()
            .unwrap();
        Arc::new(ReplayKernel {
            stub,
            streams: vec![WarpStream {
                ops: vec![
                    TraceOp { pos: 0, line_off: 0, line_len: 1 },
                    TraceOp { pos: 1, line_off: 0, line_len: 0 },
                ],
                lines: vec![LineAddr(1)],
            }],
        })
    }

    #[test]
    fn register_get_and_reregister() {
        let k1 = register("unit-a", tiny());
        assert_eq!(k1, "trace:unit-a");
        assert!(get(k1).is_some());
        assert!(get("trace:unknown").is_none());
        // Re-registration reuses the leaked key.
        let k2 = register("unit-a", tiny());
        assert!(std::ptr::eq(k1, k2));
        assert!(names().contains(&"trace:unit-a"));
    }
}
