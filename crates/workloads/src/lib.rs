//! # workloads — synthetic models of the Linebacker benchmark suite
//!
//! The paper evaluates on 20 CUDA applications from Rodinia, Parboil,
//! Polybench, the GPGPU-Sim suite and the CUDA SDK (Table 2). This crate
//! provides synthetic equivalents: per-application kernel models calibrated
//! to the memory-visible characteristics the paper reports — reused
//! working-set sizes (Figure 2), streaming footprints (Figure 3), register
//! occupancy (Figure 4) and the resulting cache-sensitivity split.
//!
//! ```
//! use workloads::apps::{all_apps, app};
//!
//! assert_eq!(all_apps().len(), 20);
//! let bicg = app("BI").expect("BI exists");
//! let kernel = bicg.kernel(16);
//! assert!(kernel.validate().is_ok());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod apps;
pub mod spec;
pub mod suite;
pub mod traces;

pub use apps::{all_apps, app};
pub use spec::{AppLoad, AppSpec, Sensitivity};
pub use suite::{classify, run_baseline, Classification};
