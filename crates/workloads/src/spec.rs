//! Application specifications: the bridge from a named benchmark to a
//! concrete [`KernelSpec`].

use gpu_sim::kernel::{KernelBuilder, KernelSpec};
use gpu_sim::pattern::AccessPattern;

/// Expected cache-sensitivity class (the paper's Table 2 grouping: an app is
/// cache-sensitive if a 192 KB L1 speeds it up by more than 30 % over the
/// 48 KB baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sensitivity {
    /// Benefits strongly from more cache.
    CacheSensitive,
    /// Insensitive to cache size (small working set or pure streaming).
    CacheInsensitive,
}

/// One static load of an application model.
#[derive(Debug, Clone, PartialEq)]
pub struct AppLoad {
    /// Address behaviour.
    pub pattern: AccessPattern,
    /// Independent ALU instructions between the load and its first consumer
    /// (latency-hiding distance).
    pub use_gap: u32,
}

/// A synthetic model of one benchmark application.
///
/// Each spec is calibrated to the observable characteristics the paper
/// reports for the real application: per-load reused working-set size
/// (Figure 2), streaming footprint (Figure 3), register pressure / occupancy
/// (Figure 4), and the Table 2 sensitivity class.
#[derive(Debug, Clone, PartialEq)]
pub struct AppSpec {
    /// Two-letter abbreviation used in the paper's figures (e.g. "S2").
    pub abbrev: &'static str,
    /// What the real application is.
    pub description: &'static str,
    /// Expected sensitivity class (Table 2).
    pub sensitivity: Sensitivity,
    /// Warps per CTA.
    pub warps_per_cta: u32,
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// The static loads.
    pub loads: Vec<AppLoad>,
    /// ALU instructions appended after the loads each iteration
    /// (compute intensity).
    pub alu_per_iter: u32,
    /// Append a streaming store each iteration.
    pub has_store: bool,
}

impl AppSpec {
    /// Builds the kernel for a GPU with `n_sms` SMs. The grid is sized so
    /// SMs stay saturated for the whole measurement window and `iterations`
    /// effectively outlives the cycle cap (runs are rate-based).
    pub fn kernel(&self, n_sms: u32) -> KernelSpec {
        self.kernel_with(n_sms, 100_000)
    }

    /// Builds the kernel with an explicit iteration count (tests use small
    /// values to let kernels drain).
    pub fn kernel_with(&self, n_sms: u32, iterations: u32) -> KernelSpec {
        let mut b = KernelBuilder::new(self.abbrev)
            .grid(64 * n_sms, self.warps_per_cta)
            .regs_per_thread(self.regs_per_thread)
            .iterations(iterations);
        for l in &self.loads {
            b = b.load_then_use(l.pattern.clone(), l.use_gap);
        }
        for _ in 0..self.alu_per_iter {
            b = b.alu(2);
        }
        if self.has_store {
            // Result stores: one fresh line every 4th iteration (stores are
            // far sparser than input loads in the modeled kernels, and the
            // write-through traffic must not dominate DRAM bandwidth).
            b = b.store(AccessPattern::SparseStream { period: 4 });
        }
        b.build().expect("app specs are valid by construction")
    }

    /// Resident CTAs per SM under the default occupancy limits.
    pub fn resident_ctas(&self, cfg: &gpu_sim::config::GpuConfig) -> u32 {
        let by_warps = cfg.max_warps_per_sm / self.warps_per_cta;
        let by_threads = cfg.max_threads_per_sm / (self.warps_per_cta * cfg.simd_width);
        let regs_per_cta = self.warps_per_cta * self.regs_per_thread;
        let by_regs = cfg.warp_regs_per_sm() / regs_per_cta;
        by_warps.min(by_threads).min(by_regs).min(cfg.max_ctas_per_sm)
    }

    /// Statically unused register bytes on the default GPU.
    pub fn static_unused_bytes(&self, cfg: &gpu_sim::config::GpuConfig) -> u64 {
        let used =
            self.resident_ctas(cfg) as u64 * (self.warps_per_cta * self.regs_per_thread) as u64;
        (cfg.warp_regs_per_sm() as u64 - used) * 128
    }

    /// Aggregate nominal reused working set of the non-streaming loads, in
    /// bytes per SM (the Figure 2 quantity, by construction).
    pub fn nominal_ws_bytes(&self, warps_per_sm: u64) -> u64 {
        self.loads
            .iter()
            .filter(|l| !l.pattern.is_streaming())
            .map(|l| l.pattern.nominal_ws_bytes(warps_per_sm))
            .sum()
    }

    /// Does the app have a streaming load?
    pub fn has_streaming_load(&self) -> bool {
        self.loads.iter().any(|l| l.pattern.is_streaming())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::config::GpuConfig;

    fn demo() -> AppSpec {
        AppSpec {
            abbrev: "XX",
            description: "demo",
            sensitivity: Sensitivity::CacheSensitive,
            warps_per_cta: 4,
            regs_per_thread: 24,
            loads: vec![
                AppLoad { pattern: AccessPattern::reuse_working_set(64 * 1024, true), use_gap: 2 },
                AppLoad { pattern: AccessPattern::streaming(128), use_gap: 1 },
            ],
            alu_per_iter: 2,
            has_store: true,
        }
    }

    #[test]
    fn kernel_builds_and_validates() {
        let k = demo().kernel(2);
        assert!(k.validate().is_ok());
        assert_eq!(k.grid_ctas, 128);
        // 2 loads + 1 store spec.
        assert_eq!(k.loads.len(), 3);
    }

    #[test]
    fn occupancy_math() {
        let app = demo();
        let cfg = GpuConfig::default();
        // 4 warps x 24 regs = 96 regs/CTA; limits: warps 16, threads 16,
        // regs 2048/96 = 21, slots 32 -> 16 resident.
        assert_eq!(app.resident_ctas(&cfg), 16);
        // 2048 - 16*96 = 512 regs = 64 KB SUR.
        assert_eq!(app.static_unused_bytes(&cfg), 64 * 1024);
    }

    #[test]
    fn nominal_ws_excludes_streaming() {
        let app = demo();
        assert_eq!(app.nominal_ws_bytes(48), 64 * 1024);
        assert!(app.has_streaming_load());
    }

    #[test]
    fn kernel_with_small_iterations_drains() {
        let k = demo().kernel_with(1, 3);
        assert_eq!(k.iterations, 3);
    }
}
