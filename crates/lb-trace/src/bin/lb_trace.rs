//! `lb-trace` — inspect LBT1 microarchitectural traces.
//!
//! ```text
//! lb-trace summarize <trace> [--timeline N]
//! lb-trace diff <left> <right>
//! lb-trace grep <trace> [--kind K] [--sm N] [--warp N] [--line HEX]
//!                        [--from CYCLE] [--to CYCLE] [--limit N]
//! ```
//!
//! Exit codes: 0 success (for `diff`: traces identical), 1 usage or decode
//! error, 2 (`diff` only): traces diverge.

use std::path::Path;
use std::process::ExitCode;

use lb_trace::{diff, grep, read_file, summarize, timeline, EventKind, Filter};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  lb-trace summarize <trace> [--timeline N]\n  lb-trace diff <left> <right>\n  lb-trace grep <trace> [--kind K] [--sm N] [--warp N] [--line HEX] [--from C] [--to C] [--limit N]"
    );
    ExitCode::from(1)
}

fn load(path: &str) -> Result<Vec<u8>, ExitCode> {
    read_file(Path::new(path)).map_err(|e| {
        eprintln!("lb-trace: {e}");
        ExitCode::from(1)
    })
}

fn parse_u64(v: &str, flag: &str) -> Result<u64, ExitCode> {
    let parsed = if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        v.parse()
    };
    parsed.map_err(|_| {
        eprintln!("lb-trace: bad value {v:?} for {flag}");
        ExitCode::from(1)
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("summarize") => cmd_summarize(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("grep") => cmd_grep(&args[1..]),
        _ => usage(),
    }
}

fn cmd_summarize(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut buckets = 0usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--timeline" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => buckets = n,
                None => return usage(),
            },
            _ if path.is_none() => path = Some(a.clone()),
            _ => return usage(),
        }
    }
    let Some(path) = path else { return usage() };
    let bytes = match load(&path) {
        Ok(b) => b,
        Err(c) => return c,
    };
    match summarize(&bytes) {
        Ok(s) => print!("{s}"),
        Err(e) => {
            eprintln!("lb-trace: {e}");
            return ExitCode::from(1);
        }
    }
    if buckets > 0 {
        match timeline(&bytes, buckets) {
            Ok(rows) => {
                println!("  timeline ({buckets} buckets):");
                println!(
                    "  {:>12} {:>9} {:>9} {:>9} {:>7} {:>7} {:>7} {:>8}",
                    "start_cycle", "issue", "l1", "l1_miss", "l2", "dram", "backup", "restore"
                );
                for row in rows {
                    println!(
                        "  {:>12} {:>9} {:>9} {:>9} {:>7} {:>7} {:>7} {:>8}",
                        row.start_cycle,
                        row.issues,
                        row.l1,
                        row.l1_misses,
                        row.l2,
                        row.dram,
                        row.backups,
                        row.restores
                    );
                }
            }
            Err(e) => {
                eprintln!("lb-trace: {e}");
                return ExitCode::from(1);
            }
        }
    }
    ExitCode::SUCCESS
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let [left, right] = args else { return usage() };
    let (l, r) = match (load(left), load(right)) {
        (Ok(l), Ok(r)) => (l, r),
        (Err(c), _) | (_, Err(c)) => return c,
    };
    match diff(&l, &r) {
        Ok(outcome) => {
            println!("{outcome}");
            if outcome.is_identical() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            }
        }
        Err(e) => {
            eprintln!("lb-trace: {e}");
            ExitCode::from(1)
        }
    }
}

fn cmd_grep(args: &[String]) -> ExitCode {
    let mut path = None;
    let mut filter = Filter::default();
    let mut limit = 0usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |flag: &str| -> Result<String, ExitCode> {
            it.next().cloned().ok_or_else(|| {
                eprintln!("lb-trace: {flag} needs a value");
                ExitCode::from(1)
            })
        };
        match a.as_str() {
            "--kind" => match next("--kind").map(|v| EventKind::from_name(&v).ok_or(v)) {
                Ok(Ok(k)) => filter.kind = Some(k),
                Ok(Err(v)) => {
                    eprintln!("lb-trace: unknown event kind {v:?}");
                    return ExitCode::from(1);
                }
                Err(c) => return c,
            },
            "--sm" => match next("--sm").and_then(|v| parse_u64(&v, "--sm")) {
                Ok(v) => filter.sm = Some(v),
                Err(c) => return c,
            },
            "--warp" => match next("--warp").and_then(|v| parse_u64(&v, "--warp")) {
                Ok(v) => filter.warp = Some(v),
                Err(c) => return c,
            },
            "--line" => match next("--line").and_then(|v| parse_u64(&v, "--line")) {
                Ok(v) => filter.line = Some(v),
                Err(c) => return c,
            },
            "--from" => match next("--from").and_then(|v| parse_u64(&v, "--from")) {
                Ok(v) => filter.from_cycle = Some(v),
                Err(c) => return c,
            },
            "--to" => match next("--to").and_then(|v| parse_u64(&v, "--to")) {
                Ok(v) => filter.to_cycle = Some(v),
                Err(c) => return c,
            },
            "--limit" => match next("--limit").and_then(|v| parse_u64(&v, "--limit")) {
                Ok(v) => limit = v as usize,
                Err(c) => return c,
            },
            _ if path.is_none() => path = Some(a.clone()),
            _ => return usage(),
        }
    }
    let Some(path) = path else { return usage() };
    let bytes = match load(&path) {
        Ok(b) => b,
        Err(c) => return c,
    };
    match grep(&bytes, &filter, limit) {
        Ok(records) => {
            for (cycle, ev) in &records {
                println!("{cycle:>10}  {ev}");
            }
            eprintln!("{} matching events", records.len());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lb-trace: {e}");
            ExitCode::from(1)
        }
    }
}
