//! Bounded stream writer for the `LBT1` binary trace format.
//!
//! Layout:
//!
//! ```text
//! magic    b"LBT1"                      (4 bytes)
//! mask     uvarint                      (event mask the trace was captured with)
//! record*  uvarint((cycle_delta << 4) | kind_tag), then kind-specific uvarints
//! ```
//!
//! Cycle deltas are relative to the previous record (the first record is
//! relative to cycle 0), so the common case — many events in the same or
//! adjacent cycles — costs one byte of framing. Records are buffered and
//! flushed in 64 KiB chunks; an optional byte cap turns the writer into a
//! bounded stream that ends with a single `Truncated` sentinel record.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::event::{Event, EventKind, FLAG_PART_IDS};
use crate::wire::put_uvarint;

pub const MAGIC: [u8; 4] = *b"LBT1";

const FLUSH_THRESHOLD: usize = 64 * 1024;

enum Sink {
    Memory(Vec<u8>),
    File(BufWriter<File>),
}

pub struct TraceWriter {
    sink: Sink,
    mask: u64,
    last_cycle: u64,
    bytes_written: u64,
    max_bytes: Option<u64>,
    truncated: bool,
    events: u64,
    buf: Vec<u8>,
}

impl TraceWriter {
    /// In-memory writer (tests, diff-on-the-fly).
    pub fn to_memory(mask: u64) -> Self {
        Self::new(Sink::Memory(Vec::new()), mask)
    }

    /// File-backed writer; the header is written immediately.
    pub fn to_file(path: &Path, mask: u64) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::new(Sink::File(BufWriter::new(file)), mask))
    }

    fn new(sink: Sink, mask: u64) -> Self {
        let mut w = TraceWriter {
            sink,
            mask,
            last_cycle: 0,
            bytes_written: 0,
            max_bytes: None,
            truncated: false,
            events: 0,
            buf: Vec::with_capacity(FLUSH_THRESHOLD + 64),
        };
        w.buf.extend_from_slice(&MAGIC);
        put_uvarint(&mut w.buf, mask);
        w
    }

    /// Cap the trace at roughly `max_bytes`; once the encoded size would
    /// exceed the cap, a single `Truncated` record is emitted and all later
    /// events are dropped.
    pub fn with_cap(mut self, max_bytes: u64) -> Self {
        self.max_bytes = Some(max_bytes);
        self
    }

    pub fn mask(&self) -> u64 {
        self.mask
    }

    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Events accepted so far (excludes the `Truncated` sentinel).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Bytes encoded so far, including any still-buffered tail.
    pub fn bytes(&self) -> u64 {
        self.bytes_written + self.buf.len() as u64
    }

    /// Append one event at `cycle`. Cycles must be non-decreasing; this is
    /// guaranteed by the simulator's phase order and debug-asserted here.
    pub fn write_event(&mut self, cycle: u64, ev: &Event) {
        if self.truncated {
            return;
        }
        debug_assert!(cycle >= self.last_cycle, "trace cycles must be monotone");
        let delta = cycle.saturating_sub(self.last_cycle);

        let start = self.buf.len();
        put_uvarint(&mut self.buf, (delta << 4) | ev.kind() as u64);
        match *ev {
            Event::Issue { sm, warp, pos } => {
                put_uvarint(&mut self.buf, sm);
                put_uvarint(&mut self.buf, warp);
                put_uvarint(&mut self.buf, pos);
            }
            Event::L1Access { sm, warp, line, outcome } => {
                put_uvarint(&mut self.buf, sm);
                put_uvarint(&mut self.buf, warp);
                put_uvarint(&mut self.buf, line);
                put_uvarint(&mut self.buf, outcome.as_u8() as u64);
            }
            Event::L2Access { part, line, hit } => {
                put_uvarint(&mut self.buf, line);
                put_uvarint(&mut self.buf, hit as u64);
                // Partition id goes last and only under the flag, keeping
                // single-partition traces byte-identical to the old format.
                if self.mask & FLAG_PART_IDS != 0 {
                    put_uvarint(&mut self.buf, part);
                }
            }
            Event::Evict { sm, line, hpc, preserved } => {
                put_uvarint(&mut self.buf, sm);
                put_uvarint(&mut self.buf, line);
                put_uvarint(&mut self.buf, hpc);
                put_uvarint(&mut self.buf, preserved as u64);
            }
            Event::Backup { sm, cta } | Event::Restore { sm, cta } => {
                put_uvarint(&mut self.buf, sm);
                put_uvarint(&mut self.buf, cta);
            }
            Event::MshrMerge { level, sm, line } => {
                put_uvarint(&mut self.buf, level);
                put_uvarint(&mut self.buf, sm);
                put_uvarint(&mut self.buf, line);
            }
            Event::DramTx { part, class, line } => {
                put_uvarint(&mut self.buf, class);
                put_uvarint(&mut self.buf, line);
                if self.mask & FLAG_PART_IDS != 0 {
                    put_uvarint(&mut self.buf, part);
                }
            }
            Event::Window { sm, window } => {
                put_uvarint(&mut self.buf, sm);
                put_uvarint(&mut self.buf, window);
            }
            Event::Truncated => {}
        }

        if let Some(cap) = self.max_bytes {
            if self.bytes_written + self.buf.len() as u64 > cap {
                // Roll back the over-cap record and close with the sentinel
                // (delta 0: the sentinel sits at the last accepted cycle).
                self.buf.truncate(start);
                put_uvarint(&mut self.buf, EventKind::Truncated as u64);
                self.truncated = true;
                return;
            }
        }

        self.last_cycle = cycle;
        self.events += 1;
        if self.buf.len() >= FLUSH_THRESHOLD {
            self.flush_buf();
        }
    }

    fn flush_buf(&mut self) {
        match &mut self.sink {
            Sink::Memory(v) => {
                v.extend_from_slice(&self.buf);
            }
            Sink::File(f) => {
                // An I/O error mid-run would silently corrupt the trace; fail
                // loudly instead — tracing is an offline diagnostic mode.
                f.write_all(&self.buf).expect("trace write failed");
            }
        }
        self.bytes_written += self.buf.len() as u64;
        self.buf.clear();
    }

    /// Flush everything to the underlying sink.
    pub fn finish(&mut self) -> io::Result<()> {
        match &mut self.sink {
            Sink::Memory(v) => {
                v.extend_from_slice(&self.buf);
                self.bytes_written += self.buf.len() as u64;
                self.buf.clear();
            }
            Sink::File(f) => {
                f.write_all(&self.buf)?;
                self.bytes_written += self.buf.len() as u64;
                self.buf.clear();
                f.flush()?;
            }
        }
        Ok(())
    }

    /// Consume a memory-backed writer and return the encoded bytes.
    /// Panics on file-backed writers.
    pub fn into_bytes(self) -> Vec<u8> {
        match self.sink {
            Sink::Memory(mut v) => {
                v.extend_from_slice(&self.buf);
                v
            }
            Sink::File(_) => panic!("into_bytes on a file-backed TraceWriter"),
        }
    }
}
