//! The capture handle threaded through simulator hot paths.
//!
//! `Tracer` is a cheap clonable handle over a shared `TraceWriter`. The
//! off state (`Tracer::off()`) carries `mask == 0` and no writer, so the
//! per-event cost on hot paths is a single branch on a local integer —
//! zero allocation, zero indirection.
//!
//! The shared core is `Rc<RefCell<..>>`, not a lock: a `Gpu` (and all its
//! SMs, which each hold a clone) is constructed, run, and dropped inside a
//! single worker thread, so the handle never crosses threads.

use std::cell::RefCell;
use std::io;
use std::rc::Rc;

use crate::event::Event;
use crate::writer::TraceWriter;

#[derive(Clone, Default)]
pub struct Tracer {
    mask: u64,
    core: Option<Rc<RefCell<TraceWriter>>>,
}

impl Tracer {
    /// The disabled tracer: every `emit` is a single always-false branch.
    pub fn off() -> Self {
        Tracer { mask: 0, core: None }
    }

    /// Wrap a writer; the writer's mask is cached in the handle so `emit`
    /// can reject unselected events without touching the `RefCell`.
    pub fn new(writer: TraceWriter) -> Self {
        let mask = writer.mask();
        Tracer { mask, core: Some(Rc::new(RefCell::new(writer))) }
    }

    pub fn is_on(&self) -> bool {
        self.mask != 0 && self.core.is_some()
    }

    /// Record `ev` at `cycle` if its kind is selected by the mask.
    #[inline]
    pub fn emit(&self, cycle: u64, ev: Event) {
        if self.mask & ev.kind().bit() == 0 {
            return;
        }
        if let Some(core) = &self.core {
            core.borrow_mut().write_event(cycle, &ev);
        }
    }

    /// Flush the underlying writer (call once after the run).
    pub fn finish(&self) -> io::Result<()> {
        match &self.core {
            Some(core) => core.borrow_mut().finish(),
            None => Ok(()),
        }
    }

    /// Events accepted so far.
    pub fn events(&self) -> u64 {
        self.core.as_ref().map_or(0, |c| c.borrow().events())
    }

    /// Bytes encoded so far.
    pub fn bytes(&self) -> u64 {
        self.core.as_ref().map_or(0, |c| c.borrow().bytes())
    }

    /// Extract the encoded bytes of a memory-backed trace. Consumes the
    /// writer slot; panics if other clones of this handle are still alive
    /// or the writer is file-backed.
    pub fn take_bytes(self) -> Option<Vec<u8>> {
        let core = self.core?;
        let cell =
            Rc::try_unwrap(core).unwrap_or_else(|_| panic!("take_bytes with live Tracer clones"));
        Some(cell.into_inner().into_bytes())
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("mask", &format_args!("{:#x}", self.mask))
            .field("on", &self.is_on())
            .finish()
    }
}
