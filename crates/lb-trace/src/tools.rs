//! Offline trace inspection: summarize / diff / grep, shared by the
//! `lb-trace` CLI and by regression tests.

use crate::event::{Event, EventKind, L1Outcome, ALL_KINDS};
use crate::reader::{TraceError, TraceReader};

/// Per-component event histogram plus headline counters for one trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    pub mask: u64,
    pub events: u64,
    pub first_cycle: u64,
    pub last_cycle: u64,
    pub truncated: bool,
    /// Events per kind, indexed by `EventKind as u8` (0..=8).
    pub by_kind: [u64; 9],
    /// Events per SM id (grown on demand; L2/DRAM events are global).
    pub by_sm: Vec<u64>,
    /// L1 outcomes: hit, miss-cold, miss-cap, bypass, reg-hit.
    pub l1_outcomes: [u64; 5],
    pub l2_hits: u64,
    pub l2_misses: u64,
    pub evicts_preserved: u64,
    pub dram_by_class: Vec<u64>,
    pub windows: u64,
}

impl Summary {
    fn note(&mut self, cycle: u64, ev: &Event) {
        if self.events == 0 {
            self.first_cycle = cycle;
        }
        self.events += 1;
        self.last_cycle = cycle;
        let kind = ev.kind();
        if (kind as usize) < self.by_kind.len() {
            self.by_kind[kind as usize] += 1;
        }
        if let Some(sm) = ev.sm() {
            let sm = sm as usize;
            if self.by_sm.len() <= sm {
                self.by_sm.resize(sm + 1, 0);
            }
            self.by_sm[sm] += 1;
        }
        match *ev {
            Event::L1Access { outcome, .. } => self.l1_outcomes[outcome.as_u8() as usize] += 1,
            Event::L2Access { hit, .. } => {
                if hit {
                    self.l2_hits += 1
                } else {
                    self.l2_misses += 1
                }
            }
            Event::Evict { preserved: true, .. } => self.evicts_preserved += 1,
            Event::DramTx { class, .. } => {
                let class = class as usize;
                if self.dram_by_class.len() <= class {
                    self.dram_by_class.resize(class + 1, 0);
                }
                self.dram_by_class[class] += 1;
            }
            Event::Window { .. } => self.windows += 1,
            _ => {}
        }
    }
}

pub fn summarize(bytes: &[u8]) -> Result<Summary, TraceError> {
    let mut r = TraceReader::new(bytes)?;
    let mut s = Summary { mask: r.mask(), ..Summary::default() };
    while let Some((cycle, ev)) = r.next_event()? {
        s.note(cycle, &ev);
    }
    s.truncated = r.truncated();
    Ok(s)
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "events={} cycles={}..{} mask={}{}",
            self.events,
            self.first_cycle,
            self.last_cycle,
            crate::event::mask_names(self.mask),
            if self.truncated { " (TRUNCATED)" } else { "" }
        )?;
        for k in ALL_KINDS {
            let n = self.by_kind[k as usize];
            if n == 0 {
                continue;
            }
            write!(f, "  {:<8} {:>10}", k.name(), n)?;
            match k {
                EventKind::L1Access => {
                    write!(f, "   (")?;
                    let mut first = true;
                    for (i, &n) in self.l1_outcomes.iter().enumerate() {
                        if n == 0 {
                            continue;
                        }
                        let name = L1Outcome::from_u8(i as u8).unwrap().name();
                        if !first {
                            write!(f, " ")?;
                        }
                        write!(f, "{name}={n}")?;
                        first = false;
                    }
                    write!(f, ")")?;
                }
                EventKind::L2Access => {
                    write!(f, "   (hit={} miss={})", self.l2_hits, self.l2_misses)?;
                }
                EventKind::Evict => {
                    write!(f, "   (preserved={})", self.evicts_preserved)?;
                }
                EventKind::DramTx => {
                    write!(f, "   (by-class=[")?;
                    for (i, &n) in self.dram_by_class.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ")?;
                        }
                        write!(f, "{n}")?;
                    }
                    write!(f, "])")?;
                }
                _ => {}
            }
            writeln!(f)?;
        }
        if self.by_sm.iter().any(|&n| n > 0) {
            write!(f, "  per-SM  ")?;
            for (sm, &n) in self.by_sm.iter().enumerate() {
                write!(f, " sm{sm}={n}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// One row of a cycle-bucketed activity timeline.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimelineRow {
    pub start_cycle: u64,
    pub issues: u64,
    pub l1: u64,
    pub l1_misses: u64,
    pub l2: u64,
    pub dram: u64,
    pub backups: u64,
    pub restores: u64,
}

/// Bucket the trace into `buckets` equal cycle spans (for coarse "what was
/// the machine doing over time" plots).
pub fn timeline(bytes: &[u8], buckets: usize) -> Result<Vec<TimelineRow>, TraceError> {
    let events = TraceReader::new(bytes)?.collect_events()?;
    let buckets = buckets.max(1);
    let Some(&(first, _)) = events.first() else {
        return Ok(Vec::new());
    };
    let last = events.last().map(|&(c, _)| c).unwrap_or(first);
    let span = (last - first + 1).max(1);
    let width = span.div_ceil(buckets as u64).max(1);
    let mut rows: Vec<TimelineRow> = (0..buckets)
        .map(|i| TimelineRow { start_cycle: first + i as u64 * width, ..Default::default() })
        .collect();
    for (cycle, ev) in events {
        let idx = (((cycle - first) / width) as usize).min(buckets - 1);
        let row = &mut rows[idx];
        match ev {
            Event::Issue { .. } => row.issues += 1,
            Event::L1Access { outcome, .. } => {
                row.l1 += 1;
                if !matches!(outcome, L1Outcome::Hit) {
                    row.l1_misses += 1;
                }
            }
            Event::L2Access { .. } => row.l2 += 1,
            Event::DramTx { .. } => row.dram += 1,
            Event::Backup { .. } => row.backups += 1,
            Event::Restore { .. } => row.restores += 1,
            _ => {}
        }
    }
    Ok(rows)
}

/// Result of comparing two traces record-by-record.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffOutcome {
    /// Same mask, same record sequence.
    Identical { events: u64 },
    /// First divergent record: index in the stream, plus each side's record
    /// (`None` means that trace ended early).
    Diverged { index: u64, left: Option<(u64, Event)>, right: Option<(u64, Event)> },
    /// Masks differ — record streams are incomparable.
    MaskMismatch { left: u64, right: u64 },
}

impl DiffOutcome {
    pub fn is_identical(&self) -> bool {
        matches!(self, DiffOutcome::Identical { .. })
    }
}

impl std::fmt::Display for DiffOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiffOutcome::Identical { events } => {
                write!(f, "identical: {events} events, zero divergence")
            }
            DiffOutcome::Diverged { index, left, right } => {
                writeln!(f, "first divergence at event #{index}:")?;
                match left {
                    Some((c, ev)) => {
                        writeln!(f, "  left : cycle {c}: [{}] {ev}", ev.kind().name())?
                    }
                    None => writeln!(f, "  left : <end of trace>")?,
                }
                match right {
                    Some((c, ev)) => write!(f, "  right: cycle {c}: [{}] {ev}", ev.kind().name()),
                    None => write!(f, "  right: <end of trace>"),
                }
            }
            DiffOutcome::MaskMismatch { left, right } => write!(
                f,
                "event masks differ (left={}, right={}); re-capture with the same --trace-events",
                crate::event::mask_names(*left),
                crate::event::mask_names(*right)
            ),
        }
    }
}

/// Find the first record where two traces diverge.
pub fn diff(left: &[u8], right: &[u8]) -> Result<DiffOutcome, TraceError> {
    let mut l = TraceReader::new(left)?;
    let mut r = TraceReader::new(right)?;
    if l.mask() != r.mask() {
        return Ok(DiffOutcome::MaskMismatch { left: l.mask(), right: r.mask() });
    }
    let mut index = 0u64;
    loop {
        let a = l.next_event()?;
        let b = r.next_event()?;
        match (a, b) {
            (None, None) => return Ok(DiffOutcome::Identical { events: index }),
            (a, b) if a == b => index += 1,
            (a, b) => return Ok(DiffOutcome::Diverged { index, left: a, right: b }),
        }
    }
}

/// Record filter for `grep`. `None` fields match everything.
#[derive(Debug, Clone, Default)]
pub struct Filter {
    pub kind: Option<EventKind>,
    pub sm: Option<u64>,
    pub warp: Option<u64>,
    pub line: Option<u64>,
    pub from_cycle: Option<u64>,
    pub to_cycle: Option<u64>,
}

impl Filter {
    pub fn matches(&self, cycle: u64, ev: &Event) -> bool {
        if let Some(k) = self.kind {
            if ev.kind() != k {
                return false;
            }
        }
        if let Some(sm) = self.sm {
            if ev.sm() != Some(sm) {
                return false;
            }
        }
        if let Some(w) = self.warp {
            if ev.warp() != Some(w) {
                return false;
            }
        }
        if let Some(l) = self.line {
            if ev.line() != Some(l) {
                return false;
            }
        }
        if let Some(from) = self.from_cycle {
            if cycle < from {
                return false;
            }
        }
        if let Some(to) = self.to_cycle {
            if cycle > to {
                return false;
            }
        }
        true
    }
}

/// Collect up to `limit` records matching `filter` (`limit == 0` = no cap).
pub fn grep(bytes: &[u8], filter: &Filter, limit: usize) -> Result<Vec<(u64, Event)>, TraceError> {
    let mut r = TraceReader::new(bytes)?;
    let mut out = Vec::new();
    while let Some((cycle, ev)) = r.next_event()? {
        if filter.matches(cycle, &ev) {
            out.push((cycle, ev));
            if limit != 0 && out.len() >= limit {
                break;
            }
        }
    }
    Ok(out)
}
