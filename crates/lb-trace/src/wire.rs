//! Hand-rolled LEB128 varints — the only primitive in the trace format.

use crate::TraceError;

/// Append `v` as an unsigned LEB128 varint (1–10 bytes).
pub fn put_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        buf.push((v as u8) | 0x80);
        v >>= 7;
    }
    buf.push(v as u8);
}

/// Decode an unsigned LEB128 varint starting at `*pos`, advancing `*pos`.
pub fn get_uvarint(buf: &[u8], pos: &mut usize) -> Result<u64, TraceError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(TraceError::UnexpectedEof { at: *pos })?;
        *pos += 1;
        let payload = (byte & 0x7f) as u64;
        if shift == 63 && payload > 1 {
            return Err(TraceError::VarintOverflow { at: *pos - 1 });
        }
        if shift > 63 {
            return Err(TraceError::VarintOverflow { at: *pos - 1 });
        }
        v |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}
