//! # lb-trace
//!
//! Compact binary microarchitectural event traces for the Linebacker
//! reproduction: a zero-cost-when-off capture handle (`Tracer`) that the
//! simulator threads through its hot paths, a varint/delta-encoded on-disk
//! format (`LBT1`), and offline inspection tools (`summarize`, `diff`,
//! `grep`) exposed both as a library and as the `lb-trace` binary.
//!
//! The crate is std-only and knows nothing about `gpu-sim`: events carry
//! raw integers, and the simulator depends on this crate (not vice versa).
//!
//! ```
//! use lb_trace::{diff, Event, Tracer, TraceWriter, MASK_ALL};
//!
//! let t = Tracer::new(TraceWriter::to_memory(MASK_ALL));
//! t.emit(10, Event::Issue { sm: 0, warp: 3, pos: 7 });
//! t.emit(12, Event::DramTx { part: 0, class: 0, line: 0x40 });
//! let bytes = t.take_bytes().unwrap();
//! assert!(diff(&bytes, &bytes).unwrap().is_identical());
//! ```

mod event;
mod reader;
mod tools;
mod tracer;
mod wire;
mod writer;

pub use event::{
    mask_names, parse_mask, Event, EventKind, L1Outcome, ALL_KINDS, FLAG_PART_IDS, MASK_ALL,
};
pub use reader::{read_file, TraceError, TraceReader};
pub use tools::{diff, grep, summarize, timeline, DiffOutcome, Filter, Summary, TimelineRow};
pub use tracer::Tracer;
pub use wire::{get_uvarint, put_uvarint};
pub use writer::{TraceWriter, MAGIC};
