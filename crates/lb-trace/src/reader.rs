//! Decoder for the `LBT1` trace format. Traces are bounded by construction
//! (the writer has a byte cap), so the reader slurps the whole buffer and
//! iterates records in place.

use std::path::Path;

use crate::event::{Event, EventKind, L1Outcome, FLAG_PART_IDS};
use crate::wire::get_uvarint;
use crate::writer::MAGIC;

/// Decode failure. A well-formed-but-capped trace is *not* an error: the
/// `Truncated` sentinel ends iteration cleanly and sets a flag instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// File does not start with the `LBT1` magic.
    BadMagic,
    /// Buffer ended in the middle of a record (a torn/chopped file).
    UnexpectedEof { at: usize },
    /// Unknown event-kind tag.
    BadKind { tag: u8, at: usize },
    /// Varint encodes more than 64 bits.
    VarintOverflow { at: usize },
    /// Payload field out of range (e.g. unknown L1 outcome).
    BadPayload { at: usize },
    /// Underlying I/O failure when loading a trace file.
    Io(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not an LBT1 trace (bad magic)"),
            TraceError::UnexpectedEof { at } => {
                write!(f, "unexpected end of trace at byte {at} (file chopped mid-record?)")
            }
            TraceError::BadKind { tag, at } => {
                write!(f, "unknown event kind tag {tag} at byte {at}")
            }
            TraceError::VarintOverflow { at } => {
                write!(f, "varint wider than 64 bits at byte {at}")
            }
            TraceError::BadPayload { at } => write!(f, "invalid payload value at byte {at}"),
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
        }
    }
}

impl std::error::Error for TraceError {}

pub struct TraceReader<'a> {
    data: &'a [u8],
    pos: usize,
    cycle: u64,
    mask: u64,
    truncated: bool,
}

impl<'a> TraceReader<'a> {
    pub fn new(data: &'a [u8]) -> Result<Self, TraceError> {
        if data.len() < MAGIC.len() || data[..MAGIC.len()] != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let mut pos = MAGIC.len();
        let mask = get_uvarint(data, &mut pos)?;
        Ok(TraceReader { data, pos, cycle: 0, mask, truncated: false })
    }

    /// Event mask the trace was captured with.
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// True once a `Truncated` sentinel has been read: the capture hit its
    /// byte cap and later events were dropped at record time.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Trailing partition-id field of `L2Access`/`DramTx` records, present
    /// only when the header mask carries `FLAG_PART_IDS` (multi-partition
    /// captures); pre-partition traces decode as partition 0.
    fn read_part(&mut self) -> Result<u64, TraceError> {
        if self.mask & FLAG_PART_IDS != 0 {
            get_uvarint(self.data, &mut self.pos)
        } else {
            Ok(0)
        }
    }

    /// Decode the next record, or `Ok(None)` at a clean end of stream
    /// (including the `Truncated` sentinel).
    pub fn next_event(&mut self) -> Result<Option<(u64, Event)>, TraceError> {
        if self.pos >= self.data.len() || self.truncated {
            return Ok(None);
        }
        let head_at = self.pos;
        let head = get_uvarint(self.data, &mut self.pos)?;
        let tag = (head & 0xf) as u8;
        self.cycle += head >> 4;
        let kind = EventKind::from_tag(tag).ok_or(TraceError::BadKind { tag, at: head_at })?;

        let ev = match kind {
            EventKind::Issue => {
                let sm = get_uvarint(self.data, &mut self.pos)?;
                let warp = get_uvarint(self.data, &mut self.pos)?;
                let pos = get_uvarint(self.data, &mut self.pos)?;
                Event::Issue { sm, warp, pos }
            }
            EventKind::L1Access => {
                let sm = get_uvarint(self.data, &mut self.pos)?;
                let warp = get_uvarint(self.data, &mut self.pos)?;
                let line = get_uvarint(self.data, &mut self.pos)?;
                let at = self.pos;
                let raw = get_uvarint(self.data, &mut self.pos)?;
                let outcome = u8::try_from(raw)
                    .ok()
                    .and_then(L1Outcome::from_u8)
                    .ok_or(TraceError::BadPayload { at })?;
                Event::L1Access { sm, warp, line, outcome }
            }
            EventKind::L2Access => {
                let line = get_uvarint(self.data, &mut self.pos)?;
                let hit = get_uvarint(self.data, &mut self.pos)? != 0;
                let part = self.read_part()?;
                Event::L2Access { part, line, hit }
            }
            EventKind::Evict => {
                let sm = get_uvarint(self.data, &mut self.pos)?;
                let line = get_uvarint(self.data, &mut self.pos)?;
                let hpc = get_uvarint(self.data, &mut self.pos)?;
                let preserved = get_uvarint(self.data, &mut self.pos)? != 0;
                Event::Evict { sm, line, hpc, preserved }
            }
            EventKind::Backup => {
                let sm = get_uvarint(self.data, &mut self.pos)?;
                let cta = get_uvarint(self.data, &mut self.pos)?;
                Event::Backup { sm, cta }
            }
            EventKind::Restore => {
                let sm = get_uvarint(self.data, &mut self.pos)?;
                let cta = get_uvarint(self.data, &mut self.pos)?;
                Event::Restore { sm, cta }
            }
            EventKind::MshrMerge => {
                let level = get_uvarint(self.data, &mut self.pos)?;
                let sm = get_uvarint(self.data, &mut self.pos)?;
                let line = get_uvarint(self.data, &mut self.pos)?;
                Event::MshrMerge { level, sm, line }
            }
            EventKind::DramTx => {
                let class = get_uvarint(self.data, &mut self.pos)?;
                let line = get_uvarint(self.data, &mut self.pos)?;
                let part = self.read_part()?;
                Event::DramTx { part, class, line }
            }
            EventKind::Window => {
                let sm = get_uvarint(self.data, &mut self.pos)?;
                let window = get_uvarint(self.data, &mut self.pos)?;
                Event::Window { sm, window }
            }
            EventKind::Truncated => {
                self.truncated = true;
                return Ok(None);
            }
        };
        Ok(Some((self.cycle, ev)))
    }

    /// Decode the remaining records into a vector.
    pub fn collect_events(mut self) -> Result<Vec<(u64, Event)>, TraceError> {
        let mut out = Vec::new();
        while let Some(rec) = self.next_event()? {
            out.push(rec);
        }
        Ok(out)
    }
}

/// Load a trace file into memory.
pub fn read_file(path: &Path) -> Result<Vec<u8>, TraceError> {
    std::fs::read(path).map_err(|e| TraceError::Io(format!("{}: {e}", path.display())))
}
