//! The trace event model.
//!
//! Events carry raw integers (SM ids, warp ids, line addresses) rather than
//! `gpu-sim` newtypes so this crate has no dependency on the simulator — the
//! dependency points the other way.

/// Outcome of an L1 data-cache access, as seen by the LSU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum L1Outcome {
    /// Tag hit in the L1 data array.
    Hit,
    /// Miss on a line never resident (cold / compulsory).
    MissCold,
    /// Miss on a previously evicted line (capacity/conflict).
    MissCapacity,
    /// Request bypassed L1 entirely (PCAL token overflow).
    Bypass,
    /// Miss serviced from register-file victim space (Linebacker/CERF).
    RegHit,
}

impl L1Outcome {
    pub fn as_u8(self) -> u8 {
        match self {
            L1Outcome::Hit => 0,
            L1Outcome::MissCold => 1,
            L1Outcome::MissCapacity => 2,
            L1Outcome::Bypass => 3,
            L1Outcome::RegHit => 4,
        }
    }

    pub fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => L1Outcome::Hit,
            1 => L1Outcome::MissCold,
            2 => L1Outcome::MissCapacity,
            3 => L1Outcome::Bypass,
            4 => L1Outcome::RegHit,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            L1Outcome::Hit => "hit",
            L1Outcome::MissCold => "miss-cold",
            L1Outcome::MissCapacity => "miss-cap",
            L1Outcome::Bypass => "bypass",
            L1Outcome::RegHit => "reg-hit",
        }
    }
}

/// Event kind tag. The numeric value is the low nibble of each record's
/// leading varint and the bit position in an event mask, so values must
/// stay stable across versions of the format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    Issue = 0,
    L1Access = 1,
    L2Access = 2,
    Evict = 3,
    Backup = 4,
    Restore = 5,
    MshrMerge = 6,
    DramTx = 7,
    Window = 8,
    /// Sentinel written once when a bounded writer hits its byte cap.
    Truncated = 15,
}

/// All concrete (non-sentinel) kinds, in tag order.
pub const ALL_KINDS: [EventKind; 9] = [
    EventKind::Issue,
    EventKind::L1Access,
    EventKind::L2Access,
    EventKind::Evict,
    EventKind::Backup,
    EventKind::Restore,
    EventKind::MshrMerge,
    EventKind::DramTx,
    EventKind::Window,
];

/// Mask with every concrete kind enabled.
pub const MASK_ALL: u64 = (1 << 0)
    | (1 << 1)
    | (1 << 2)
    | (1 << 3)
    | (1 << 4)
    | (1 << 5)
    | (1 << 6)
    | (1 << 7)
    | (1 << 8);

/// Header-mask flag (not an event kind): when set, `L2Access` and `DramTx`
/// records carry a trailing memory-partition id field. Writers set it only
/// for multi-partition captures, so single-partition traces stay
/// byte-identical to the pre-partition format and old readers keep working
/// on them. Lives outside `MASK_ALL` so user mask specs cannot toggle it.
pub const FLAG_PART_IDS: u64 = 1 << 9;

impl EventKind {
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => EventKind::Issue,
            1 => EventKind::L1Access,
            2 => EventKind::L2Access,
            3 => EventKind::Evict,
            4 => EventKind::Backup,
            5 => EventKind::Restore,
            6 => EventKind::MshrMerge,
            7 => EventKind::DramTx,
            8 => EventKind::Window,
            15 => EventKind::Truncated,
            _ => return None,
        })
    }

    /// Bit in an event mask selecting this kind.
    pub fn bit(self) -> u64 {
        1u64 << (self as u8)
    }

    pub fn name(self) -> &'static str {
        match self {
            EventKind::Issue => "issue",
            EventKind::L1Access => "l1",
            EventKind::L2Access => "l2",
            EventKind::Evict => "evict",
            EventKind::Backup => "backup",
            EventKind::Restore => "restore",
            EventKind::MshrMerge => "mshr",
            EventKind::DramTx => "dram",
            EventKind::Window => "window",
            EventKind::Truncated => "truncated",
        }
    }

    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "issue" => EventKind::Issue,
            "l1" => EventKind::L1Access,
            "l2" => EventKind::L2Access,
            "evict" => EventKind::Evict,
            "backup" => EventKind::Backup,
            "restore" => EventKind::Restore,
            "mshr" => EventKind::MshrMerge,
            "dram" => EventKind::DramTx,
            "window" => EventKind::Window,
            _ => return None,
        })
    }
}

/// Parse an event-mask spec: either a comma-separated list of kind names
/// (`l1,dram,window`), the word `all`, or a hex literal (`0x1ff`).
pub fn parse_mask(spec: &str) -> Result<u64, String> {
    let spec = spec.trim();
    if spec.eq_ignore_ascii_case("all") {
        return Ok(MASK_ALL);
    }
    if let Some(hex) = spec.strip_prefix("0x").or_else(|| spec.strip_prefix("0X")) {
        return u64::from_str_radix(hex, 16)
            .map(|m| m & MASK_ALL)
            .map_err(|e| format!("bad hex mask {spec:?}: {e}"));
    }
    let mut mask = 0u64;
    for part in spec.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        match EventKind::from_name(part) {
            Some(k) => mask |= k.bit(),
            None => {
                return Err(format!(
                    "unknown event kind {part:?} (expected one of: issue,l1,l2,evict,backup,restore,mshr,dram,window,all or 0x<hex>)"
                ))
            }
        }
    }
    Ok(mask)
}

/// Render a mask back as a comma-separated list of kind names.
pub fn mask_names(mask: u64) -> String {
    if mask & MASK_ALL == MASK_ALL {
        return "all".to_string();
    }
    let mut names: Vec<&str> = Vec::new();
    for k in ALL_KINDS {
        if mask & k.bit() != 0 {
            names.push(k.name());
        }
    }
    names.join(",")
}

/// One microarchitectural event. Paired with a cycle number in the trace
/// stream; the cycle lives outside the enum so delta encoding stays in the
/// framing layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Event {
    /// A warp issued one instruction on SM `sm` (`pos` = program position).
    Issue { sm: u64, warp: u64, pos: u64 },
    /// LSU finished an L1 lookup for `line` with `outcome`.
    L1Access { sm: u64, warp: u64, line: u64, outcome: L1Outcome },
    /// L2 lookup for `line` in partition `part`; `hit` is the tag-array
    /// result (`part` is 0 on a single-partition machine).
    L2Access { part: u64, line: u64, hit: bool },
    /// L1 fill on SM `sm` evicted `line` (hit-counter `hpc`); `preserved`
    /// means the policy kept the victim in register-file victim space.
    Evict { sm: u64, line: u64, hpc: u64, preserved: bool },
    /// Linebacker CTA throttle: registers of `cta` backed up to L2.
    Backup { sm: u64, cta: u64 },
    /// Linebacker CTA release: registers of `cta` restored from L2.
    Restore { sm: u64, cta: u64 },
    /// A miss merged into an existing MSHR entry (`level` 0 = L1, 1 = L2).
    MshrMerge { level: u64, sm: u64, line: u64 },
    /// DRAM channel of partition `part` started servicing a transaction
    /// (`class` = request-class tag).
    DramTx { part: u64, class: u64, line: u64 },
    /// SM `sm` crossed sampling-window boundary number `window`.
    Window { sm: u64, window: u64 },
    /// Writer hit its byte cap; everything after this point was dropped.
    Truncated,
}

impl Event {
    pub fn kind(&self) -> EventKind {
        match self {
            Event::Issue { .. } => EventKind::Issue,
            Event::L1Access { .. } => EventKind::L1Access,
            Event::L2Access { .. } => EventKind::L2Access,
            Event::Evict { .. } => EventKind::Evict,
            Event::Backup { .. } => EventKind::Backup,
            Event::Restore { .. } => EventKind::Restore,
            Event::MshrMerge { .. } => EventKind::MshrMerge,
            Event::DramTx { .. } => EventKind::DramTx,
            Event::Window { .. } => EventKind::Window,
            Event::Truncated => EventKind::Truncated,
        }
    }

    /// SM id carried by the event, if any (L2/DRAM events are global).
    pub fn sm(&self) -> Option<u64> {
        match *self {
            Event::Issue { sm, .. }
            | Event::L1Access { sm, .. }
            | Event::Evict { sm, .. }
            | Event::Backup { sm, .. }
            | Event::Restore { sm, .. }
            | Event::MshrMerge { sm, .. }
            | Event::Window { sm, .. } => Some(sm),
            _ => None,
        }
    }

    /// Warp id carried by the event, if any.
    pub fn warp(&self) -> Option<u64> {
        match *self {
            Event::Issue { warp, .. } | Event::L1Access { warp, .. } => Some(warp),
            _ => None,
        }
    }

    /// Cache-line address carried by the event, if any.
    pub fn line(&self) -> Option<u64> {
        match *self {
            Event::L1Access { line, .. }
            | Event::L2Access { line, .. }
            | Event::Evict { line, .. }
            | Event::MshrMerge { line, .. }
            | Event::DramTx { line, .. } => Some(line),
            _ => None,
        }
    }
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Event::Issue { sm, warp, pos } => {
                write!(f, "issue sm={sm} warp={warp} pos={pos}")
            }
            Event::L1Access { sm, warp, line, outcome } => {
                write!(f, "l1 sm={sm} warp={warp} line={line:#x} outcome={}", outcome.name())
            }
            Event::L2Access { part, line, hit } => {
                write!(f, "l2 ")?;
                if part != 0 {
                    write!(f, "part={part} ")?;
                }
                write!(f, "line={line:#x} {}", if hit { "hit" } else { "miss" })
            }
            Event::Evict { sm, line, hpc, preserved } => {
                write!(
                    f,
                    "evict sm={sm} line={line:#x} hpc={hpc}{}",
                    if preserved { " preserved" } else { "" }
                )
            }
            Event::Backup { sm, cta } => write!(f, "backup sm={sm} cta={cta}"),
            Event::Restore { sm, cta } => write!(f, "restore sm={sm} cta={cta}"),
            Event::MshrMerge { level, sm, line } => {
                write!(
                    f,
                    "mshr level={} sm={sm} line={line:#x}",
                    if level == 0 { "L1" } else { "L2" }
                )
            }
            Event::DramTx { part, class, line } => {
                write!(f, "dram ")?;
                if part != 0 {
                    write!(f, "part={part} ")?;
                }
                write!(f, "class={class} line={line:#x}")
            }
            Event::Window { sm, window } => write!(f, "window sm={sm} index={window}"),
            Event::Truncated => write!(f, "truncated"),
        }
    }
}
