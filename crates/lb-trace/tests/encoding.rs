//! Property and edge-case tests for the LBT1 wire format: encode→decode
//! identity, varint boundary values, byte-cap truncation, and the
//! torn-file error path.

use lb_trace::{
    diff, get_uvarint, parse_mask, put_uvarint, summarize, Event, EventKind, L1Outcome, TraceError,
    TraceReader, TraceWriter, Tracer, ALL_KINDS, FLAG_PART_IDS, MASK_ALL,
};
use testkit::{check_n, Rng};

fn random_event(rng: &mut Rng) -> Event {
    match rng.range_u32(0, 8) {
        0 => Event::Issue { sm: rng.range_u64(0, 63), warp: rng.range_u64(0, 63), pos: rng.u64() },
        1 => Event::L1Access {
            sm: rng.range_u64(0, 63),
            warp: rng.range_u64(0, 63),
            line: rng.u64(),
            outcome: L1Outcome::from_u8(rng.range_u32(0, 4) as u8).unwrap(),
        },
        2 => Event::L2Access { part: 0, line: rng.u64(), hit: rng.bool() },
        3 => Event::Evict {
            sm: rng.range_u64(0, 63),
            line: rng.u64(),
            hpc: rng.range_u64(0, 255),
            preserved: rng.bool(),
        },
        4 => Event::Backup { sm: rng.range_u64(0, 63), cta: rng.range_u64(0, 31) },
        5 => Event::Restore { sm: rng.range_u64(0, 63), cta: rng.range_u64(0, 31) },
        6 => Event::MshrMerge {
            level: rng.range_u64(0, 1),
            sm: rng.range_u64(0, 63),
            line: rng.u64(),
        },
        7 => Event::DramTx { part: 0, class: rng.range_u64(0, 4), line: rng.u64() },
        _ => Event::Window { sm: rng.range_u64(0, 63), window: rng.u64() },
    }
}

#[test]
fn varint_boundary_values_round_trip() {
    let cases = [
        0u64,
        1,
        127,
        128,
        129,
        16383,
        16384,
        (1 << 21) - 1,
        1 << 21,
        (1 << 28) - 1,
        1 << 28,
        (1 << 35) - 1,
        u32::MAX as u64,
        u64::MAX - 1,
        u64::MAX,
    ];
    for &v in &cases {
        let mut buf = Vec::new();
        put_uvarint(&mut buf, v);
        assert!(buf.len() <= 10, "{v} encoded to {} bytes", buf.len());
        let mut pos = 0;
        assert_eq!(get_uvarint(&buf, &mut pos), Ok(v));
        assert_eq!(pos, buf.len(), "trailing bytes after {v}");
    }
}

#[test]
fn varint_random_round_trip() {
    check_n("varint round-trip", 2000, |rng| {
        // Mix uniform u64s with small values (the common trace case).
        let v = if rng.bool() { rng.u64() } else { rng.range_u64(0, 300) };
        let mut buf = Vec::new();
        put_uvarint(&mut buf, v);
        let mut pos = 0;
        assert_eq!(get_uvarint(&buf, &mut pos), Ok(v));
    });
}

#[test]
fn varint_overflow_rejected() {
    // 11 continuation bytes encode > 64 bits.
    let buf = [0xffu8; 11];
    let mut pos = 0;
    assert!(matches!(get_uvarint(&buf, &mut pos), Err(TraceError::VarintOverflow { .. })));
    // Chopped varint (all-continuation) hits EOF, not a panic.
    let buf = [0x80u8, 0x80];
    let mut pos = 0;
    assert!(matches!(get_uvarint(&buf, &mut pos), Err(TraceError::UnexpectedEof { .. })));
}

#[test]
fn encode_decode_identity() {
    check_n("trace round-trip", 200, |rng| {
        let n = rng.range_usize(0, 100);
        let mut cycle = 0u64;
        let mut expected = Vec::with_capacity(n);
        let mut w = TraceWriter::to_memory(MASK_ALL);
        for _ in 0..n {
            cycle += rng.range_u64(0, 5000);
            let ev = random_event(rng);
            w.write_event(cycle, &ev);
            expected.push((cycle, ev));
        }
        let bytes = w.into_bytes();
        let r = TraceReader::new(&bytes).expect("header");
        assert_eq!(r.mask(), MASK_ALL);
        let got = r.collect_events().expect("decode");
        assert_eq!(got, expected);
    });
}

#[test]
fn mask_filters_at_capture_time() {
    let mask = EventKind::DramTx.bit() | EventKind::Window.bit();
    let t = Tracer::new(TraceWriter::to_memory(mask));
    t.emit(5, Event::Issue { sm: 0, warp: 1, pos: 2 });
    t.emit(6, Event::DramTx { part: 0, class: 1, line: 0x80 });
    t.emit(7, Event::L2Access { part: 0, line: 0x80, hit: false });
    t.emit(9, Event::Window { sm: 0, window: 1 });
    let bytes = t.take_bytes().unwrap();
    let got = TraceReader::new(&bytes).unwrap().collect_events().unwrap();
    assert_eq!(
        got,
        vec![
            (6, Event::DramTx { part: 0, class: 1, line: 0x80 }),
            (9, Event::Window { sm: 0, window: 1 }),
        ]
    );
}

#[test]
fn byte_cap_truncates_cleanly() {
    let mut w = TraceWriter::to_memory(MASK_ALL).with_cap(64);
    for cycle in 0..1000 {
        w.write_event(cycle, &Event::DramTx { part: 0, class: 0, line: cycle * 64 });
    }
    assert!(w.truncated());
    let accepted = w.events();
    assert!(accepted > 0 && accepted < 1000);
    let bytes = w.into_bytes();
    assert!(bytes.len() as u64 <= 64 + 2, "cap overshot: {} bytes", bytes.len());
    let mut r = TraceReader::new(&bytes).unwrap();
    let mut n = 0u64;
    while r.next_event().unwrap().is_some() {
        n += 1;
    }
    assert_eq!(n, accepted);
    assert!(r.truncated(), "reader must surface the truncation sentinel");

    let s = summarize(&bytes).unwrap();
    assert!(s.truncated);
    assert_eq!(s.events, accepted);
}

#[test]
fn torn_file_is_an_error_not_a_panic() {
    let mut w = TraceWriter::to_memory(MASK_ALL);
    for cycle in 0..50 {
        w.write_event(
            cycle * 3,
            &Event::L1Access {
                sm: 1,
                warp: 2,
                line: 0xdeadbeef00 + cycle,
                outcome: L1Outcome::MissCold,
            },
        );
    }
    let bytes = w.into_bytes();
    // Chop at every prefix length: decoding must either succeed on a record
    // boundary or report UnexpectedEof — never panic, never misdecode.
    let full = TraceReader::new(&bytes).unwrap().collect_events().unwrap();
    for cut in 0..bytes.len() {
        let chopped = &bytes[..cut];
        match TraceReader::new(chopped) {
            Err(TraceError::BadMagic) | Err(TraceError::UnexpectedEof { .. }) => {}
            Ok(r) => match r.collect_events() {
                Ok(prefix) => assert!(prefix.len() <= full.len()),
                Err(TraceError::UnexpectedEof { .. }) => {}
                Err(other) => panic!("unexpected decode error at cut {cut}: {other}"),
            },
            Err(other) => panic!("unexpected header error at cut {cut}: {other}"),
        }
    }
}

#[test]
fn empty_trace_is_valid() {
    let bytes = TraceWriter::to_memory(MASK_ALL).into_bytes();
    let got = TraceReader::new(&bytes).unwrap().collect_events().unwrap();
    assert!(got.is_empty());
    assert!(diff(&bytes, &bytes).unwrap().is_identical());
}

#[test]
fn garbage_header_rejected() {
    assert!(matches!(TraceReader::new(b"nope"), Err(TraceError::BadMagic)));
    assert!(matches!(TraceReader::new(b"LB"), Err(TraceError::BadMagic)));
    assert!(matches!(TraceReader::new(b""), Err(TraceError::BadMagic)));
}

#[test]
fn mask_spec_parsing() {
    assert_eq!(parse_mask("all"), Ok(MASK_ALL));
    assert_eq!(parse_mask("0x1ff"), Ok(MASK_ALL));
    assert_eq!(parse_mask("l1,dram"), Ok(EventKind::L1Access.bit() | EventKind::DramTx.bit()));
    assert_eq!(
        parse_mask(" window , issue "),
        Ok(EventKind::Window.bit() | EventKind::Issue.bit())
    );
    assert!(parse_mask("l3").is_err());
    for k in ALL_KINDS {
        assert_eq!(parse_mask(k.name()), Ok(k.bit()), "name {} must round-trip", k.name());
        assert_eq!(lb_trace::mask_names(k.bit()), k.name());
    }
    assert_eq!(lb_trace::mask_names(MASK_ALL), "all");
}

#[test]
fn partition_ids_round_trip_under_flag() {
    // With FLAG_PART_IDS in the mask, L2/DRAM records carry their partition
    // id; without it, the id is dropped at encode time and reads back as 0.
    let events = [
        Event::L2Access { part: 3, line: 0x1240, hit: true },
        Event::DramTx { part: 7, class: 1, line: 0x9980 },
        Event::L2Access { part: 0, line: 0x40, hit: false },
    ];
    let mut flagged = TraceWriter::to_memory(MASK_ALL | FLAG_PART_IDS);
    let mut plain = TraceWriter::to_memory(MASK_ALL);
    for (i, ev) in events.iter().enumerate() {
        flagged.write_event(i as u64, ev);
        plain.write_event(i as u64, ev);
    }

    let bytes = flagged.into_bytes();
    let r = TraceReader::new(&bytes).unwrap();
    assert_eq!(r.mask() & FLAG_PART_IDS, FLAG_PART_IDS);
    let got: Vec<Event> = r.collect_events().unwrap().into_iter().map(|(_, e)| e).collect();
    assert_eq!(got, events);

    let got: Vec<Event> = TraceReader::new(&plain.into_bytes())
        .unwrap()
        .collect_events()
        .unwrap()
        .into_iter()
        .map(|(_, e)| e)
        .collect();
    assert_eq!(
        got,
        vec![
            Event::L2Access { part: 0, line: 0x1240, hit: true },
            Event::DramTx { part: 0, class: 1, line: 0x9980 },
            Event::L2Access { part: 0, line: 0x40, hit: false },
        ]
    );
}

#[test]
fn part_flag_is_not_user_parseable() {
    // The flag lives outside MASK_ALL: hex mask specs cannot set it, so it
    // is only ever set programmatically by multi-partition capture paths.
    assert_eq!(parse_mask("0xfff").unwrap() & FLAG_PART_IDS, 0);
    assert_eq!(FLAG_PART_IDS & MASK_ALL, 0);
}

#[test]
fn diff_reports_first_divergence() {
    let mk = |bump: bool| {
        let mut w = TraceWriter::to_memory(MASK_ALL);
        for cycle in 0..20u64 {
            let line = if bump && cycle == 7 { 0x999 } else { cycle * 64 };
            w.write_event(cycle * 10, &Event::L2Access { part: 0, line, hit: cycle % 2 == 0 });
        }
        w.into_bytes()
    };
    let a = mk(false);
    let b = mk(true);
    match diff(&a, &b).unwrap() {
        lb_trace::DiffOutcome::Diverged { index, left, right } => {
            assert_eq!(index, 7);
            assert_eq!(left, Some((70, Event::L2Access { part: 0, line: 7 * 64, hit: false })));
            assert_eq!(right, Some((70, Event::L2Access { part: 0, line: 0x999, hit: false })));
        }
        other => panic!("expected divergence, got {other:?}"),
    }
    // Prefix traces diverge at the end-of-stream.
    let mut w = TraceWriter::to_memory(MASK_ALL);
    w.write_event(0, &Event::L2Access { part: 0, line: 0, hit: true });
    let short = w.into_bytes();
    match diff(&a, &short).unwrap() {
        lb_trace::DiffOutcome::Diverged { index: 1, left: Some(_), right: None } => {}
        other => panic!("expected early divergence, got {other:?}"),
    }
}
